#pragma once
/// \file cancellation.hpp
/// Cooperative cancellation for long-running solves and sweeps.
///
/// A CancellationSource owns an atomic flag (plus an optional monotonic
/// deadline); every CancellationToken handed out by the source observes the
/// same state. Long-running loops -- parallelFor, the CG/Schur iterations,
/// the GMG V-cycle, Newton stepping, and the attack pulse loop -- poll the
/// *ambient* token (a thread-local installed with CancellationScope) once
/// per iteration and unwind via CancelledError within about one iteration
/// of the cancel. The ambient design keeps the deep solver APIs unchanged:
/// the experiment engine installs the scope around each grid point, and a
/// future nh_serve installs it around each request.
///
/// A default-constructed CancellationToken means "never cancelled" and makes
/// every check a single thread-local pointer test, so the checkpoints are
/// effectively free when no source is attached.

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

namespace nh::util {

namespace detail {
struct CancelState;
}  // namespace detail

/// Thrown by cancellation checkpoints when the ambient token has been
/// cancelled. A distinct type so callers (the experiment engine, parallelFor)
/// can tell "cancelled" apart from "failed": cancellation is an orderly
/// unwind, not an error in the work itself.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what, bool deadlineExpired = false)
      : std::runtime_error(what), deadlineExpired_(deadlineExpired) {}

  /// True when the cancel came from the source's deadline passing rather
  /// than an explicit cancel() call; the experiment engine maps this to the
  /// TimedOut point outcome.
  bool deadlineExpired() const { return deadlineExpired_; }

 private:
  bool deadlineExpired_;
};

/// Read-only view of a CancellationSource's state. Cheap to copy (one
/// shared_ptr); a default-constructed token is valid forever.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True when this token is attached to a source (default tokens are not).
  bool attached() const { return static_cast<bool>(state_); }

  /// True when the source was cancelled or its deadline has passed.
  bool cancelled() const;

  /// True specifically because the deadline passed (explicit cancel() wins
  /// when both happened).
  bool deadlineExpired() const;

  /// Throw CancelledError (tagged with \p site) when cancelled; no-op
  /// otherwise.
  void throwIfCancelled(const char* site = "work") const;

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelState> state_;
};

/// Owner side: create, hand token() to the work, call cancel() (or let the
/// deadline expire) to stop it.
class CancellationSource {
 public:
  CancellationSource();

  /// Source whose tokens auto-cancel once \p seconds of wall clock
  /// (monotonic) have elapsed from the call. Non-positive seconds means an
  /// already-expired deadline.
  static CancellationSource withDeadline(double seconds);

  CancellationToken token() const { return CancellationToken(state_); }

  /// Flip the flag; every outstanding token observes it on its next check.
  void cancel();

  bool cancelled() const { return token().cancelled(); }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

/// RAII installer for the ambient (thread-local) token. Nests: the previous
/// token is restored on destruction. parallelFor propagates the caller's
/// ambient token onto its helper workers, so a scope installed around a
/// parallel region covers every body regardless of which thread runs it.
class CancellationScope {
 public:
  explicit CancellationScope(CancellationToken token);
  ~CancellationScope();

  CancellationScope(const CancellationScope&) = delete;
  CancellationScope& operator=(const CancellationScope&) = delete;

 private:
  CancellationToken previous_;
};

/// The token installed on this thread ("none" when no scope is active).
CancellationToken currentCancellation();

/// Cooperative checkpoint: throw CancelledError when the ambient token is
/// cancelled. One thread-local read when no scope is installed -- safe to
/// call once per solver iteration.
void checkCancellation(const char* site = "solver loop");

}  // namespace nh::util
