#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace nh::util {

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples) sum += v;
  return sum / static_cast<double>(samples.size());
}

double variance(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double sum = 0.0;
  for (double v : samples) sum += (v - m) * (v - m);
  return sum / static_cast<double>(samples.size() - 1);
}

double quantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty())
    throw std::invalid_argument("quantileSorted: empty sample vector");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("quantileSorted: q outside [0, 1]");
  // R type-7: h = (n - 1) q, interpolate between floor(h) and floor(h) + 1.
  const double h = static_cast<double>(sorted.size() - 1) * q;
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return quantileSorted(samples, q);
}

double normalQuantile(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument("normalQuantile: p outside (0, 1)");
  // Acklam's rational approximation: central region plus two tails.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double pLow = 0.02425;
  if (p < pLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - pLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

Interval wilsonInterval(std::size_t successes, std::size_t trials,
                        double confidence) {
  if (trials == 0)
    throw std::invalid_argument("wilsonInterval: trials must be > 0");
  if (successes > trials)
    throw std::invalid_argument("wilsonInterval: successes > trials");
  if (!(confidence > 0.0 && confidence < 1.0))
    throw std::invalid_argument("wilsonInterval: confidence outside (0, 1)");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = normalQuantile(0.5 + confidence / 2.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, centre - half), std::min(1.0, centre + half)};
}

Interval bootstrapQuantileInterval(const std::vector<double>& samples, double q,
                                   std::size_t resamples, std::uint64_t seed,
                                   double confidence) {
  if (samples.empty())
    throw std::invalid_argument("bootstrapQuantileInterval: empty samples");
  if (resamples == 0)
    throw std::invalid_argument("bootstrapQuantileInterval: resamples == 0");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("bootstrapQuantileInterval: q outside [0, 1]");
  if (!(confidence > 0.0 && confidence < 1.0))
    throw std::invalid_argument(
        "bootstrapQuantileInterval: confidence outside (0, 1)");
  const std::size_t n = samples.size();
  std::vector<double> stats(resamples);
  std::vector<double> resample(n);
  for (std::size_t r = 0; r < resamples; ++r) {
    // Stream-per-resample: the bootstrap is reproducible and could be
    // parallelized without changing the answer.
    Rng rng = Rng::forStream(seed, r);
    for (std::size_t i = 0; i < n; ++i)
      resample[i] = samples[rng.uniformInt(n)];
    std::sort(resample.begin(), resample.end());
    stats[r] = quantileSorted(resample, q);
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = 1.0 - confidence;
  return {quantileSorted(stats, alpha / 2.0),
          quantileSorted(stats, 1.0 - alpha / 2.0)};
}

}  // namespace nh::util
