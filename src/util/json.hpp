#pragma once
/// \file json.hpp
/// Minimal JSON layer for the machine-readable experiment results
/// (core/experiment) and the tracked baseline store (core/baseline): a
/// streaming writer with correct string escaping and round-trippable
/// numbers, plus a small strict parser (JsonValue) so `nh_sweep check` can
/// read baseline documents back without external dependencies.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace nh::util {

/// Escape \p s for use inside a JSON string literal (quotes not included).
std::string jsonEscape(const std::string& s);

/// Render a double as a JSON number token. NaN/inf have no JSON encoding
/// and are emitted as null.
std::string jsonNumber(double v);

/// Streaming writer with automatic comma placement. Usage:
///
///   JsonWriter w;
///   w.beginObject();
///   w.key("name").value("fig3a");
///   w.key("rows").beginArray();
///   w.value(1.0).value(2.0);
///   w.endArray();
///   w.endObject();
///   std::string doc = w.str();
///
/// Mismatched begin/end or a key outside an object throw std::logic_error.
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Write an object key; must be inside an object and followed by a value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(std::size_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Finished document. Throws std::logic_error when containers are open.
  std::string str() const;

 private:
  enum class Scope { Object, Array };
  void beforeValue();
  void push(Scope scope, char open);
  void pop(Scope scope, char close);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> hasItems_;
  bool keyPending_ = false;
};

/// Parsed JSON document (the reader side of JsonWriter). Strict recursive-
/// descent parser: one top-level value, no trailing garbage, no comments;
/// malformed input throws std::runtime_error naming the byte offset.
/// Object members keep document order; duplicate keys keep the first.
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  ///< null

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::Null; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const std::vector<JsonValue>& items() const;    ///< Array elements.
  const std::vector<Member>& members() const;     ///< Object members.

  /// Object member lookup: nullptr / throws std::runtime_error when absent.
  const JsonValue* find(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;

  /// Array element count / object member count; 0 for scalars.
  std::size_t size() const;

  static JsonValue parse(const std::string& text);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;

  friend class JsonParser;
};

}  // namespace nh::util
