#pragma once
/// \file json.hpp
/// Minimal streaming JSON writer for the machine-readable experiment
/// results (core/experiment). Emits a compact, valid document with correct
/// string escaping and round-trippable numbers; no reader -- downstream
/// tooling (Python, jq) parses the files.

#include <cstddef>
#include <string>
#include <vector>

namespace nh::util {

/// Escape \p s for use inside a JSON string literal (quotes not included).
std::string jsonEscape(const std::string& s);

/// Render a double as a JSON number token. NaN/inf have no JSON encoding
/// and are emitted as null.
std::string jsonNumber(double v);

/// Streaming writer with automatic comma placement. Usage:
///
///   JsonWriter w;
///   w.beginObject();
///   w.key("name").value("fig3a");
///   w.key("rows").beginArray();
///   w.value(1.0).value(2.0);
///   w.endArray();
///   w.endObject();
///   std::string doc = w.str();
///
/// Mismatched begin/end or a key outside an object throw std::logic_error.
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Write an object key; must be inside an object and followed by a value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(std::size_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Finished document. Throws std::logic_error when containers are open.
  std::string str() const;

 private:
  enum class Scope { Object, Array };
  void beforeValue();
  void push(Scope scope, char open);
  void pop(Scope scope, char close);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> hasItems_;
  bool keyPending_ = false;
};

}  // namespace nh::util
