#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/cancellation.hpp"
#include "util/linsolve.hpp"

namespace nh::util {

namespace {
// Pool whose worker is currently executing this thread, if any; lets
// parallelFor detect same-pool reentrancy and run inline instead of
// deadlocking on helper jobs no free worker can ever pick up.
thread_local ThreadPool* t_currentPool = nullptr;
}  // namespace

namespace {
std::size_t hardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}
}  // namespace

std::size_t clampThreadCount(std::size_t requested, const char* tag) {
  if (requested == 0) return 0;
  // Oversubscribing beyond a small multiple of the hardware buys nothing,
  // and a typo (1000000 workers) would try to spawn a million threads.
  const std::size_t hardware = hardwareThreads();
  const std::size_t maxThreads = hardware * 4;
  if (requested <= maxThreads) return requested;
  std::fprintf(stderr,
               "%s%zu exceeds 4x hardware concurrency (%zu); clamping to "
               "%zu\n",
               tag, requested, hardware, maxThreads);
  return maxThreads;
}

std::size_t defaultThreadCount() {
  if (const char* env = std::getenv("NH_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) {
      // Cached: NH_THREADS is fixed for the process, this runs on every
      // sweep call, and the clamp warning should print once, not per call.
      static const std::size_t resolved =
          clampThreadCount(static_cast<std::size_t>(parsed), "NH_THREADS=");
      return resolved;
    }
  }
  return hardwareThreads();
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = defaultThreadCount();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] {
      t_currentPool = this;
      workerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  jobReady_.notifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    MutexLock lock(mutex_);
    jobs_.push_back(std::move(job));
  }
  jobReady_.notifyOne();
}

void ThreadPool::wait() {
  MutexLock lock(mutex_);
  while (!jobs_.empty() || active_ != 0) idle_.wait(mutex_);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && jobs_.empty()) jobReady_.wait(mutex_);
      if (jobs_.empty()) return;  // stopping_ and nothing left to drain
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++active_;
    }
    job();
    {
      MutexLock lock(mutex_);
      --active_;
      if (jobs_.empty() && active_ == 0) idle_.notifyAll();
    }
  }
}

namespace {
// Rethrow the first loop failure, annotated with the index whose body threw.
// CancelledError passes through untouched (cancellation is an orderly unwind
// and callers dispatch on the type), and so does SolverError: its structured
// diagnosis (which solve, iterations, residual) exists precisely so callers
// above the barrier can read it, and its message already names the failing
// solve. Other std::exceptions are wrapped so the message pinpoints the
// failing iteration.
[[noreturn]] void rethrowLoopError(const std::exception_ptr& error,
                                   std::size_t index) {
  try {
    std::rethrow_exception(error);
  } catch (const CancelledError&) {
    throw;
  } catch (const SolverError&) {
    throw;
  } catch (const std::exception& e) {
    throw std::runtime_error("parallelFor: body at index " +
                             std::to_string(index) + " failed: " + e.what());
  } catch (...) {
    throw;  // non-std exceptions carry no message to annotate
  }
}
}  // namespace

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;

  // Shared iteration state: workers and the calling thread claim indices
  // from `next`. A throwing body does NOT stop its siblings -- the remaining
  // indices keep draining so every slot gets its chance to complete (the
  // isolation semantics the sweep harness relies on); the first failure wins
  // `error` and is rethrown at the barrier, tagged with its index. The
  // error pair is errorMutex-guarded end to end -- including the post-barrier
  // read: the barrier's release/acquire ordering already makes it safe, but
  // the analysis (rightly) has no way to see that, and an uncontended lock
  // at the barrier is free.
  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> pendingTasks{0};
    Mutex errorMutex;
    std::exception_ptr error NH_GUARDED_BY(errorMutex);
    std::size_t errorIndex NH_GUARDED_BY(errorMutex) = 0;
    Mutex doneMutex;
    CondVar done;
  };
  auto state = std::make_shared<LoopState>();

  // Cancellation is the one thing that *does* stop the loop early: the
  // caller's ambient token is propagated onto every helper so a cancel
  // stops index claiming within ~one body on every thread.
  const CancellationToken token = currentCancellation();

  const std::function<void(std::size_t)>* bodyPtr = &body;
  auto drain = [state, bodyPtr, count, token] {
    std::size_t i;
    while ((i = state->next.fetch_add(1)) < count) {
      if (token.cancelled()) {
        MutexLock lock(state->errorMutex);
        if (!state->error) {
          const bool byDeadline = token.deadlineExpired();
          state->error = std::make_exception_ptr(CancelledError(
              byDeadline ? "deadline expired in parallelFor"
                         : "cancelled in parallelFor",
              byDeadline));
          state->errorIndex = i;
        }
        break;
      }
      try {
        (*bodyPtr)(i);
      } catch (...) {
        MutexLock lock(state->errorMutex);
        if (!state->error) {
          state->error = std::current_exception();
          state->errorIndex = i;
        }
      }
    }
  };

  // Reentrant call from one of our own workers: every sibling may be blocked
  // in the same situation, so queued helpers might never run -- skip them and
  // let this worker drain the whole loop inline.
  const std::size_t helperTasks =
      (count > 1 && t_currentPool != this) ? std::min(size(), count - 1)
                                           : std::size_t{0};
  state->pendingTasks.store(helperTasks);
  for (std::size_t t = 0; t < helperTasks; ++t) {
    submit([state, drain, token] {
      {
        CancellationScope scope(token);
        drain();
      }
      if (state->pendingTasks.fetch_sub(1) == 1) {
        MutexLock lock(state->doneMutex);
        state->done.notifyAll();
      }
    });
  }

  drain();  // the calling thread works too (and alone when the pool is busy)

  {
    MutexLock lock(state->doneMutex);
    while (state->pendingTasks.load() != 0) state->done.wait(state->doneMutex);
  }
  std::exception_ptr error;
  std::size_t errorIndex = 0;
  {
    MutexLock lock(state->errorMutex);
    error = state->error;
    errorIndex = state->errorIndex;
  }
  if (error) rethrowLoopError(error, errorIndex);
}

ThreadPool& ThreadPool::shared() {
  // The parallelFor caller participates, so defaultThreadCount()-1 workers
  // give defaultThreadCount() concurrent bodies in total.
  static ThreadPool pool(std::max<std::size_t>(1, defaultThreadCount() - 1));
  return pool;
}

void parallelFor(std::size_t count, const std::function<void(std::size_t)>& body,
                 std::size_t threads) {
  if (threads == 0) threads = defaultThreadCount();
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      checkCancellation("parallelFor");
      try {
        body(i);
      } catch (const CancelledError&) {
        throw;
      } catch (const SolverError&) {
        throw;  // structured diagnosis passes through, like the pool barrier
      } catch (const std::exception& e) {
        throw std::runtime_error("parallelFor: body at index " +
                                 std::to_string(i) + " failed: " + e.what());
      }
    }
    return;
  }
  // threads counts the calling thread too; defaultThreadCount() is compared
  // directly (a pure function) so non-default requests never instantiate the
  // shared pool's workers just to look at them.
  if (threads == defaultThreadCount()) {
    ThreadPool::shared().parallelFor(count, body);
    return;
  }
  ThreadPool pool(threads - 1);
  pool.parallelFor(count, body);
}

}  // namespace nh::util
