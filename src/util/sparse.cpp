#include "util/sparse.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/threadpool.hpp"

namespace nh::util {

namespace {

/// Row range below which the SpMV stays on the calling thread: the fork/join
/// overhead of the shared pool only pays off for FEM-sized operators.
constexpr std::size_t kParallelSpmvMinRows = 16384;

std::uint64_t nextPatternId() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;  // first id is 1; 0 means "no pattern".
}

}  // namespace

void TripletBuilder::add(std::size_t r, std::size_t c, double value) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("TripletBuilder::add: index out of range");
  }
  entries_.push_back({r, c, value});
}

SparseMatrix SparseMatrix::fromTriplets(const TripletBuilder& builder) {
  SparseMatrix m;
  m.rows_ = builder.rows();
  m.cols_ = builder.cols();

  // Count entries per row, then bucket-sort into CSR order.
  std::vector<std::size_t> counts(m.rows_ + 1, 0);
  for (const auto& e : builder.entries()) counts[e.row + 1]++;
  for (std::size_t r = 0; r < m.rows_; ++r) counts[r + 1] += counts[r];

  std::vector<std::size_t> cols(builder.entryCount());
  std::vector<double> vals(builder.entryCount());
  {
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (const auto& e : builder.entries()) {
      const std::size_t slot = cursor[e.row]++;
      cols[slot] = e.col;
      vals[slot] = e.value;
    }
  }

  // Sort each row by column and merge duplicates. The sort must be stable so
  // duplicates accumulate in insertion order -- the exact summation order
  // SparsityPattern::assemble replays, keeping cached refills bit-identical.
  m.rowPtr_.assign(m.rows_ + 1, 0);
  m.colIdx_.reserve(cols.size());
  m.values_.reserve(vals.size());
  for (std::size_t r = 0; r < m.rows_; ++r) {
    const std::size_t begin = counts[r];
    const std::size_t end = counts[r + 1];
    std::vector<std::size_t> order(end - begin);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = begin + i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return cols[a] < cols[b]; });
    for (std::size_t i = 0; i < order.size();) {
      const std::size_t c = cols[order[i]];
      double acc = 0.0;
      while (i < order.size() && cols[order[i]] == c) {
        acc += vals[order[i]];
        ++i;
      }
      m.colIdx_.push_back(c);
      m.values_.push_back(acc);
    }
    m.rowPtr_[r + 1] = m.colIdx_.size();
  }
  return m;
}

Vector SparseMatrix::multiply(const Vector& x) const {
  Vector y(rows_, 0.0);
  multiplyInto(x, y);
  return y;
}

void SparseMatrix::multiplyInto(const Vector& x, Vector& y) const {
  assert(x.size() == cols_);
  assert(y.size() == rows_);
  const auto rowRange = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      double acc = 0.0;
      for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
        acc += values_[k] * x[colIdx_[k]];
      }
      y[r] = acc;
    }
  };
  if (rows_ < kParallelSpmvMinRows) {
    rowRange(0, rows_);
    return;
  }
  ThreadPool& pool = ThreadPool::shared();
  if (pool.size() < 2) {  // single-core: fork/join is pure overhead
    rowRange(0, rows_);
    return;
  }
  const std::size_t chunks = std::min(rows_, pool.size() + 1);
  const std::size_t per = (rows_ + chunks - 1) / chunks;
  pool.parallelFor(chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * per;
    rowRange(begin, std::min(rows_, begin + per));
  });
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("SparseMatrix::at");
  const auto begin = colIdx_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r]);
  const auto end = colIdx_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - colIdx_.begin())];
}

Vector SparseMatrix::diagonal() const {
  Vector d(rows_, 0.0);
  diagonalInto(d);
  return d;
}

void SparseMatrix::diagonalInto(Vector& d) const {
  if (d.size() != rows_) d.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) d[r] = r < cols_ ? at(r, r) : 0.0;
}

bool SparseMatrix::isSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      const std::size_t c = colIdx_[k];
      if (std::fabs(values_[k] - at(c, r)) > tol) return false;
    }
  }
  return true;
}

SparsityPattern SparsityPattern::fromTriplets(const TripletBuilder& builder) {
  SparsityPattern p;
  p.rows_ = builder.rows();
  p.cols_ = builder.cols();
  p.id_ = nextPatternId();

  // Bucket entries per row, remembering each entry's insertion index.
  std::vector<std::size_t> counts(p.rows_ + 1, 0);
  for (const auto& e : builder.entries()) counts[e.row + 1]++;
  for (std::size_t r = 0; r < p.rows_; ++r) counts[r + 1] += counts[r];

  const std::size_t entryCount = builder.entryCount();
  std::vector<std::size_t> cols(entryCount);
  std::vector<std::size_t> origin(entryCount);
  {
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (std::size_t k = 0; k < entryCount; ++k) {
      const auto& e = builder.entries()[k];
      const std::size_t slot = cursor[e.row]++;
      cols[slot] = e.col;
      origin[slot] = k;
    }
  }

  // Column-sort each row (stable: duplicates keep insertion order, matching
  // fromTriplets), merge duplicates, and record each entry's CSR slot.
  p.rowPtr_.assign(p.rows_ + 1, 0);
  p.scatter_.resize(entryCount);
  for (std::size_t r = 0; r < p.rows_; ++r) {
    const std::size_t begin = counts[r];
    const std::size_t end = counts[r + 1];
    std::vector<std::size_t> order(end - begin);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = begin + i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return cols[a] < cols[b]; });
    for (std::size_t i = 0; i < order.size();) {
      const std::size_t c = cols[order[i]];
      const std::size_t slot = p.colIdx_.size();
      p.colIdx_.push_back(c);
      while (i < order.size() && cols[order[i]] == c) {
        p.scatter_[origin[order[i]]] = slot;
        ++i;
      }
    }
    p.rowPtr_[r + 1] = p.colIdx_.size();
  }
  return p;
}

void SparsityPattern::assemble(const TripletBuilder& builder,
                               SparseMatrix& out) const {
  if (builder.entryCount() != scatter_.size() || builder.rows() != rows_ ||
      builder.cols() != cols_) {
    throw std::invalid_argument(
        "SparsityPattern::assemble: builder does not match the pattern's "
        "stamp sequence");
  }
  if (out.patternId_ != id_) {
    out.rows_ = rows_;
    out.cols_ = cols_;
    out.rowPtr_ = rowPtr_;
    out.colIdx_ = colIdx_;
    out.values_.resize(colIdx_.size());
    out.patternId_ = id_;
  }
  std::fill(out.values_.begin(), out.values_.end(), 0.0);
  const auto& entries = builder.entries();
  for (std::size_t k = 0; k < entries.size(); ++k) {
    out.values_[scatter_[k]] += entries[k].value;
  }
}

}  // namespace nh::util
