#include "util/sparse.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/spmv.hpp"
#include "util/threadpool.hpp"

namespace nh::util {

namespace {

/// Row range below which the SpMV stays on the calling thread: the fork/join
/// overhead of the shared pool only pays off for FEM-sized operators.
constexpr std::size_t kParallelSpmvMinRows = 16384;

std::uint64_t nextPatternId() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;  // first id is 1; 0 means "no pattern".
}

}  // namespace

void TripletBuilder::add(std::size_t r, std::size_t c, double value) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("TripletBuilder::add: index out of range");
  }
  entries_.push_back({r, c, value});
}

SparseMatrix SparseMatrix::fromTriplets(const TripletBuilder& builder) {
  SparseMatrix m;
  m.rows_ = builder.rows();
  m.cols_ = builder.cols();

  // Count entries per row, then bucket-sort into CSR order.
  std::vector<std::size_t> counts(m.rows_ + 1, 0);
  for (const auto& e : builder.entries()) counts[e.row + 1]++;
  for (std::size_t r = 0; r < m.rows_; ++r) counts[r + 1] += counts[r];

  std::vector<std::size_t> cols(builder.entryCount());
  std::vector<double> vals(builder.entryCount());
  {
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (const auto& e : builder.entries()) {
      const std::size_t slot = cursor[e.row]++;
      cols[slot] = e.col;
      vals[slot] = e.value;
    }
  }

  // Sort each row by column and merge duplicates. The sort must be stable so
  // duplicates accumulate in insertion order -- the exact summation order
  // SparsityPattern::assemble replays, keeping cached refills bit-identical.
  m.rowPtr_.assign(m.rows_ + 1, 0);
  m.colIdx_.reserve(cols.size());
  m.values_.reserve(vals.size());
  for (std::size_t r = 0; r < m.rows_; ++r) {
    const std::size_t begin = counts[r];
    const std::size_t end = counts[r + 1];
    std::vector<std::size_t> order(end - begin);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = begin + i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return cols[a] < cols[b]; });
    for (std::size_t i = 0; i < order.size();) {
      const std::size_t c = cols[order[i]];
      double acc = 0.0;
      while (i < order.size() && cols[order[i]] == c) {
        acc += vals[order[i]];
        ++i;
      }
      m.colIdx_.push_back(c);
      m.values_.push_back(acc);
    }
    m.rowPtr_[r + 1] = m.colIdx_.size();
  }
  return m;
}

Vector SparseMatrix::multiply(const Vector& x) const {
  Vector y(rows_, 0.0);
  multiplyInto(x, y);
  return y;
}

void SparseMatrix::multiplyInto(const Vector& x, Vector& y) const {
  assert(x.size() == cols_);
  assert(y.size() == rows_);
  // The row kernel (util/spmv) picks 4- or 8-accumulator blocking per row
  // width and is dispatched once per process to the best SIMD variant; every
  // variant is bit-identical to spmv::rowRangeReference, and the order per
  // row is fixed, so results stay deterministic for any thread count.
  const spmv::RowRangeFn kernel = spmv::activeKernel();
  const std::size_t* rp = rowPtr_.data();
  const std::size_t* col = colIdx_.data();
  const double* val = values_.data();
  const double* xs = x.data();
  double* ys = y.data();
  const auto rowRange = [&](std::size_t begin, std::size_t end) {
    kernel(rp, col, val, xs, ys, begin, end);
  };
  if (rows_ < kParallelSpmvMinRows) {
    rowRange(0, rows_);
    return;
  }
  ThreadPool& pool = ThreadPool::shared();
  if (pool.size() < 2) {  // single-core: fork/join is pure overhead
    rowRange(0, rows_);
    return;
  }
  const std::size_t chunks = std::min(rows_, pool.size() + 1);
  const std::size_t per = (rows_ + chunks - 1) / chunks;
  pool.parallelFor(chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * per;
    rowRange(begin, std::min(rows_, begin + per));
  });
}

void SparseMatrix::multiplyIntoReference(const Vector& x, Vector& y) const {
  assert(x.size() == cols_);
  assert(y.size() == rows_);
  spmv::rowRangeReference(rowPtr_.data(), colIdx_.data(), values_.data(),
                          x.data(), y.data(), 0, rows_);
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.rowPtr_.assign(cols_ + 1, 0);
  for (const std::size_t c : colIdx_) t.rowPtr_[c + 1]++;
  for (std::size_t c = 0; c < cols_; ++c) t.rowPtr_[c + 1] += t.rowPtr_[c];
  t.colIdx_.resize(colIdx_.size());
  t.values_.resize(values_.size());
  std::vector<std::size_t> cursor(t.rowPtr_.begin(), t.rowPtr_.end() - 1);
  // Scanning rows in order writes each transposed row's entries with
  // increasing source row = sorted columns, preserving the CSR invariant.
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      const std::size_t slot = cursor[colIdx_[k]]++;
      t.colIdx_[slot] = r;
      t.values_[slot] = values_[k];
    }
  }
  return t;
}

void multiplySparseInto(const SparseMatrix& a, const SparseMatrix& b,
                        SparseMatrix& out) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiplySparse: inner dimension mismatch");
  }
  out.rows_ = a.rows();
  out.cols_ = b.cols();
  out.patternId_ = 0;
  out.rowPtr_.assign(a.rows() + 1, 0);
  out.colIdx_.clear();
  out.values_.clear();
  // The Galerkin products this feeds roughly preserve nnz; reserving the
  // larger operand's count avoids most growth reallocations.
  out.colIdx_.reserve(std::max(a.nonZeros(), b.nonZeros()));
  out.values_.reserve(std::max(a.nonZeros(), b.nonZeros()));

  // Gustavson: per output row, scatter-accumulate into a dense workspace
  // keyed by column; a row-stamp marker detects first touches in O(1).
  constexpr std::size_t kNever = static_cast<std::size_t>(-1);
  std::vector<double> acc(b.cols(), 0.0);
  std::vector<std::size_t> lastRow(b.cols(), kNever);
  std::vector<std::size_t> touched;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    touched.clear();
    for (std::size_t ka = a.rowPtr_[r]; ka < a.rowPtr_[r + 1]; ++ka) {
      const std::size_t mid = a.colIdx_[ka];
      const double av = a.values_[ka];
      for (std::size_t kb = b.rowPtr_[mid]; kb < b.rowPtr_[mid + 1]; ++kb) {
        const std::size_t col = b.colIdx_[kb];
        if (lastRow[col] != r) {
          lastRow[col] = r;
          acc[col] = 0.0;
          touched.push_back(col);
        }
        acc[col] += av * b.values_[kb];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const std::size_t col : touched) {
      out.colIdx_.push_back(col);
      out.values_.push_back(acc[col]);
    }
    out.rowPtr_[r + 1] = out.colIdx_.size();
  }
}

SparseMatrix multiplySparse(const SparseMatrix& a, const SparseMatrix& b) {
  SparseMatrix c;
  multiplySparseInto(a, b, c);
  return c;
}

bool SpGemmPlan::matches(const SparseMatrix& a, const SparseMatrix& b) const {
  return b.cols_ == bCols_ && a.rowPtr_ == aRowPtr_ && a.colIdx_ == aColIdx_ &&
         b.rowPtr_ == bRowPtr_ && b.colIdx_ == bColIdx_;
}

void SpGemmPlan::multiply(const SparseMatrix& a, const SparseMatrix& b,
                          SparseMatrix& out) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("SpGemmPlan::multiply: inner dimension mismatch");
  }
  if (id_ == 0 || !matches(a, b)) {
    // Structure changed (or first use): full symbolic + numeric SpGEMM, then
    // snapshot the structures so the next same-structure call can refill.
    multiplySparseInto(a, b, out);
    aRowPtr_ = a.rowPtr_;
    aColIdx_ = a.colIdx_;
    bRowPtr_ = b.rowPtr_;
    bColIdx_ = b.colIdx_;
    bCols_ = b.cols_;
    outRowPtr_ = out.rowPtr_;
    outColIdx_ = out.colIdx_;
    acc_.assign(b.cols(), 0.0);
    id_ = nextPatternId();
    out.patternId_ = id_;
    ++symbolicCount_;
    lastWasRefill_ = false;
    return;
  }
  // Refill path. Copy the cached product structure into `out` only when it
  // does not already carry it (same skip SparsityPattern::assemble uses).
  if (out.patternId_ != id_) {
    out.rows_ = aRowPtr_.size() - 1;
    out.cols_ = b.cols();
    out.rowPtr_ = outRowPtr_;
    out.colIdx_ = outColIdx_;
    out.values_.resize(outColIdx_.size());
    out.patternId_ = id_;
  }
  // Per row: zero the accumulator over exactly the product row's columns,
  // replay the Gustavson accumulation in its original order (bit-identical
  // sums), and gather back through the known structure. No sort, no
  // first-touch bookkeeping, no allocation.
  const std::size_t rows = outRowPtr_.size() - 1;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = outRowPtr_[r]; k < outRowPtr_[r + 1]; ++k) {
      acc_[outColIdx_[k]] = 0.0;
    }
    for (std::size_t ka = aRowPtr_[r]; ka < aRowPtr_[r + 1]; ++ka) {
      const std::size_t mid = aColIdx_[ka];
      const double av = a.values_[ka];
      for (std::size_t kb = bRowPtr_[mid]; kb < bRowPtr_[mid + 1]; ++kb) {
        acc_[bColIdx_[kb]] += av * b.values_[kb];
      }
    }
    for (std::size_t k = outRowPtr_[r]; k < outRowPtr_[r + 1]; ++k) {
      out.values_[k] = acc_[outColIdx_[k]];
    }
  }
  lastWasRefill_ = true;
}

void TransposePlan::transpose(const SparseMatrix& a, SparseMatrix& out) {
  if (id_ != 0 && a.rowPtr_ == aRowPtr_ && a.colIdx_ == aColIdx_) {
    if (out.patternId_ != id_) {
      out.rows_ = a.cols_;
      out.cols_ = a.rows_;
      out.rowPtr_ = outRowPtr_;
      out.colIdx_ = outColIdx_;
      out.values_.resize(outColIdx_.size());
      out.patternId_ = id_;
    }
    for (std::size_t k = 0; k < scatter_.size(); ++k) {
      out.values_[scatter_[k]] = a.values_[k];
    }
    lastWasRefill_ = true;
    return;
  }
  // Symbolic pass: the same counting sort as SparseMatrix::transposed, but
  // recording where each source slot lands so refills become a straight
  // value permutation.
  out = a.transposed();
  scatter_.resize(a.colIdx_.size());
  {
    std::vector<std::size_t> cursor(out.rowPtr_.begin(), out.rowPtr_.end() - 1);
    for (std::size_t r = 0; r < a.rows_; ++r) {
      for (std::size_t k = a.rowPtr_[r]; k < a.rowPtr_[r + 1]; ++k) {
        scatter_[k] = cursor[a.colIdx_[k]]++;
      }
    }
  }
  aRowPtr_ = a.rowPtr_;
  aColIdx_ = a.colIdx_;
  outRowPtr_ = out.rowPtr_;
  outColIdx_ = out.colIdx_;
  id_ = nextPatternId();
  out.patternId_ = id_;
  ++symbolicCount_;
  lastWasRefill_ = false;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("SparseMatrix::at");
  const auto begin = colIdx_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r]);
  const auto end = colIdx_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - colIdx_.begin())];
}

Vector SparseMatrix::diagonal() const {
  Vector d(rows_, 0.0);
  diagonalInto(d);
  return d;
}

void SparseMatrix::diagonalInto(Vector& d) const {
  if (d.size() != rows_) d.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) d[r] = r < cols_ ? at(r, r) : 0.0;
}

bool SparseMatrix::isSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      const std::size_t c = colIdx_[k];
      if (std::fabs(values_[k] - at(c, r)) > tol) return false;
    }
  }
  return true;
}

SparsityPattern SparsityPattern::fromTriplets(const TripletBuilder& builder) {
  SparsityPattern p;
  p.rows_ = builder.rows();
  p.cols_ = builder.cols();
  p.id_ = nextPatternId();

  // Bucket entries per row, remembering each entry's insertion index.
  std::vector<std::size_t> counts(p.rows_ + 1, 0);
  for (const auto& e : builder.entries()) counts[e.row + 1]++;
  for (std::size_t r = 0; r < p.rows_; ++r) counts[r + 1] += counts[r];

  const std::size_t entryCount = builder.entryCount();
  std::vector<std::size_t> cols(entryCount);
  std::vector<std::size_t> origin(entryCount);
  {
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (std::size_t k = 0; k < entryCount; ++k) {
      const auto& e = builder.entries()[k];
      const std::size_t slot = cursor[e.row]++;
      cols[slot] = e.col;
      origin[slot] = k;
    }
  }

  // Column-sort each row (stable: duplicates keep insertion order, matching
  // fromTriplets), merge duplicates, and record each entry's CSR slot.
  p.rowPtr_.assign(p.rows_ + 1, 0);
  p.scatter_.resize(entryCount);
  for (std::size_t r = 0; r < p.rows_; ++r) {
    const std::size_t begin = counts[r];
    const std::size_t end = counts[r + 1];
    std::vector<std::size_t> order(end - begin);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = begin + i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return cols[a] < cols[b]; });
    for (std::size_t i = 0; i < order.size();) {
      const std::size_t c = cols[order[i]];
      const std::size_t slot = p.colIdx_.size();
      p.colIdx_.push_back(c);
      while (i < order.size() && cols[order[i]] == c) {
        p.scatter_[origin[order[i]]] = slot;
        ++i;
      }
    }
    p.rowPtr_[r + 1] = p.colIdx_.size();
  }
  return p;
}

void SparsityPattern::assemble(const TripletBuilder& builder,
                               SparseMatrix& out) const {
  if (builder.entryCount() != scatter_.size() || builder.rows() != rows_ ||
      builder.cols() != cols_) {
    throw std::invalid_argument(
        "SparsityPattern::assemble: builder does not match the pattern's "
        "stamp sequence");
  }
  if (out.patternId_ != id_) {
    out.rows_ = rows_;
    out.cols_ = cols_;
    out.rowPtr_ = rowPtr_;
    out.colIdx_ = colIdx_;
    out.values_.resize(colIdx_.size());
    out.patternId_ = id_;
  }
  std::fill(out.values_.begin(), out.values_.end(), 0.0);
  const auto& entries = builder.entries();
  for (std::size_t k = 0; k < entries.size(); ++k) {
    out.values_[scatter_[k]] += entries[k].value;
  }
}

}  // namespace nh::util
