#include "util/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace nh::util {

void TripletBuilder::add(std::size_t r, std::size_t c, double value) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("TripletBuilder::add: index out of range");
  }
  entries_.push_back({r, c, value});
}

SparseMatrix SparseMatrix::fromTriplets(const TripletBuilder& builder) {
  SparseMatrix m;
  m.rows_ = builder.rows();
  m.cols_ = builder.cols();

  // Count entries per row, then bucket-sort into CSR order.
  std::vector<std::size_t> counts(m.rows_ + 1, 0);
  for (const auto& e : builder.entries()) counts[e.row + 1]++;
  for (std::size_t r = 0; r < m.rows_; ++r) counts[r + 1] += counts[r];

  std::vector<std::size_t> cols(builder.entryCount());
  std::vector<double> vals(builder.entryCount());
  {
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (const auto& e : builder.entries()) {
      const std::size_t slot = cursor[e.row]++;
      cols[slot] = e.col;
      vals[slot] = e.value;
    }
  }

  // Sort each row by column and merge duplicates.
  m.rowPtr_.assign(m.rows_ + 1, 0);
  m.colIdx_.reserve(cols.size());
  m.values_.reserve(vals.size());
  for (std::size_t r = 0; r < m.rows_; ++r) {
    const std::size_t begin = counts[r];
    const std::size_t end = counts[r + 1];
    std::vector<std::size_t> order(end - begin);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = begin + i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return cols[a] < cols[b]; });
    for (std::size_t i = 0; i < order.size();) {
      const std::size_t c = cols[order[i]];
      double acc = 0.0;
      while (i < order.size() && cols[order[i]] == c) {
        acc += vals[order[i]];
        ++i;
      }
      m.colIdx_.push_back(c);
      m.values_.push_back(acc);
    }
    m.rowPtr_[r + 1] = m.colIdx_.size();
  }
  return m;
}

Vector SparseMatrix::multiply(const Vector& x) const {
  Vector y(rows_, 0.0);
  multiplyInto(x, y);
  return y;
}

void SparseMatrix::multiplyInto(const Vector& x, Vector& y) const {
  assert(x.size() == cols_);
  assert(y.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      acc += values_[k] * x[colIdx_[k]];
    }
    y[r] = acc;
  }
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("SparseMatrix::at");
  const auto begin = colIdx_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r]);
  const auto end = colIdx_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - colIdx_.begin())];
}

Vector SparseMatrix::diagonal() const {
  Vector d(rows_, 0.0);
  for (std::size_t r = 0; r < rows_ && r < cols_; ++r) d[r] = at(r, r);
  return d;
}

bool SparseMatrix::isSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      const std::size_t c = colIdx_[k];
      if (std::fabs(values_[k] - at(c, r)) > tol) return false;
    }
  }
  return true;
}

}  // namespace nh::util
