#pragma once
/// \file stats.hpp
/// Campaign statistics: quantiles, binomial (Wilson) confidence intervals,
/// and a deterministic percentile bootstrap. The campaign layer
/// (core/campaign.hpp) reports flip-rate and pulses-to-flip distributions
/// through these instead of point estimates. Everything here is pure and
/// deterministic: the bootstrap draws its resamples from counter-based
/// Rng::forStream streams, so results never depend on scheduling.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nh::util {

/// A two-sided confidence interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool operator==(const Interval&) const = default;
};

/// Mean of the samples; 0 for an empty vector.
double mean(const std::vector<double>& samples);

/// Unbiased sample variance (n - 1 denominator); 0 for fewer than 2 samples.
double variance(const std::vector<double>& samples);

/// Quantile q in [0, 1] of an ascending-sorted vector, with linear
/// interpolation between order statistics (R type-7, the numpy default).
/// Throws std::invalid_argument for an empty vector or q outside [0, 1].
double quantileSorted(const std::vector<double>& sorted, double q);

/// Convenience overload: copies, sorts, and delegates to quantileSorted.
double quantile(std::vector<double> samples, double q);

/// Inverse standard normal CDF (the probit function) via Acklam's rational
/// approximation (|relative error| < 1.15e-9 over (0, 1)). Throws
/// std::invalid_argument for p outside (0, 1).
double normalQuantile(double p);

/// Wilson score interval for a binomial proportion: `successes` out of
/// `trials` at the given two-sided confidence level (default 95%). Unlike
/// the Wald interval it stays inside [0, 1] and behaves sensibly at 0/n and
/// n/n. Throws std::invalid_argument for trials == 0 or confidence outside
/// (0, 1).
Interval wilsonInterval(std::size_t successes, std::size_t trials,
                        double confidence = 0.95);

/// Percentile-bootstrap confidence interval for quantile q of `samples`:
/// draws `resamples` bootstrap resamples (with replacement), computes the
/// quantile of each, and returns the central `confidence` mass of that
/// bootstrap distribution. Deterministic: resample r draws its indices from
/// Rng::forStream(seed, r), so the result depends only on (samples, q,
/// resamples, seed, confidence). Throws std::invalid_argument for empty
/// samples, resamples == 0, q outside [0, 1], or confidence outside (0, 1).
Interval bootstrapQuantileInterval(const std::vector<double>& samples, double q,
                                   std::size_t resamples, std::uint64_t seed,
                                   double confidence = 0.95);

}  // namespace nh::util
