#include "util/faultinject.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "util/annotations.hpp"

namespace nh::util::faultinject {

namespace {

struct Policy {
  std::size_t nthCall = 1;
  std::string scope;
  std::size_t count = 0;
  bool fired = false;
};

struct Registry {
  Mutex mutex;
  std::map<std::string, Policy> sites NH_GUARDED_BY(mutex);
};

// Number of armed-and-not-yet-fired sites; lets shouldFire bail with one
// relaxed load in the (overwhelmingly common) nothing-armed case. Mutated
// only while holding Registry::mutex; read lock-free by enabled().
std::atomic<std::size_t> g_armedCount{0};

thread_local std::string t_scope;

/// Insert or replace one policy. The armed count tracks live
/// (armed-and-unfired) sites only, so replacing a fired policy revives it.
void armLocked(Registry& registry, const std::string& site,
               const Policy& policy) NH_REQUIRES(registry.mutex) {
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) {
    registry.sites.emplace(site, policy);
    g_armedCount.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (it->second.fired) g_armedCount.fetch_add(1, std::memory_order_relaxed);
    it->second = policy;
  }
}

// NH_FAULT=site:n[@scope][,site2:n2[@scope2]...]
std::size_t armFromSpecLocked(Registry& registry, const std::string& spec)
    NH_REQUIRES(registry.mutex) {
  std::size_t armed = 0;
  const auto malformed = [](const std::string& entry, const char* why) {
    // A typo'd injection spec must never masquerade as a clean run: name the
    // entry so the operator can fix it.
    std::fprintf(stderr,
                 "NH_FAULT: ignoring malformed entry '%s' (%s; expected "
                 "site:n[@scope])\n",
                 entry.c_str(), why);
  };
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;  // stray comma, nothing to report
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      malformed(entry, colon == 0 ? "empty site name" : "missing ':'");
      continue;
    }
    Policy policy;
    const std::string site = entry.substr(0, colon);
    std::string rest = entry.substr(colon + 1);
    const std::size_t at = rest.find('@');
    if (at != std::string::npos) {
      policy.scope = rest.substr(at + 1);
      rest = rest.substr(0, at);
    }
    char* parseEnd = nullptr;
    const unsigned long n = std::strtoul(rest.c_str(), &parseEnd, 10);
    if (parseEnd == rest.c_str() || *parseEnd != '\0' || n == 0) {
      malformed(entry, "bad call count");
      continue;
    }
    policy.nthCall = static_cast<std::size_t>(n);
    armLocked(registry, site, policy);
    ++armed;
  }
  return armed;
}

Registry& registry() {
  static Registry* instance = [] {
    auto* r = new Registry;
    if (const char* env = std::getenv("NH_FAULT")) {
      // Single-threaded magic-static init, but the analysis (correctly)
      // cannot prove that -- lock the fresh registry's own mutex.
      MutexLock lock(r->mutex);
      armFromSpecLocked(*r, env);
    }
    return r;
  }();
  return *instance;
}

// Parse NH_FAULT before main(): the enabled() fast gate short-circuits on
// g_armedCount without constructing the registry, so env-armed policies
// would otherwise stay invisible in any process that never calls arm().
const bool g_envArmed = (registry(), true);

}  // namespace

bool enabled() { return g_armedCount.load(std::memory_order_relaxed) > 0; }

bool shouldFire(const char* site) {
  if (!enabled()) return false;
  Registry& reg = registry();
  MutexLock lock(reg.mutex);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return false;
  Policy& policy = it->second;
  if (policy.fired) return false;
  if (!policy.scope.empty() && policy.scope != t_scope) return false;
  ++policy.count;
  if (policy.count < policy.nthCall) return false;
  policy.fired = true;
  g_armedCount.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void arm(const std::string& site, std::size_t nthCall,
         const std::string& scope) {
  Registry& reg = registry();
  MutexLock lock(reg.mutex);
  Policy policy;
  policy.nthCall = nthCall == 0 ? 1 : nthCall;
  policy.scope = scope;
  armLocked(reg, site, policy);
}

std::size_t armFromSpec(const std::string& spec) {
  Registry& reg = registry();
  MutexLock lock(reg.mutex);
  return armFromSpecLocked(reg, spec);
}

void disarm(const std::string& site) {
  Registry& reg = registry();
  MutexLock lock(reg.mutex);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return;
  if (!it->second.fired) g_armedCount.fetch_sub(1, std::memory_order_relaxed);
  reg.sites.erase(it);
}

void clearAll() {
  Registry& reg = registry();
  MutexLock lock(reg.mutex);
  for (const auto& [site, policy] : reg.sites) {
    (void)site;
    if (!policy.fired) g_armedCount.fetch_sub(1, std::memory_order_relaxed);
  }
  reg.sites.clear();
}

std::size_t callCount(const std::string& site) {
  Registry& reg = registry();
  MutexLock lock(reg.mutex);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.count;
}

bool fired(const std::string& site) {
  Registry& reg = registry();
  MutexLock lock(reg.mutex);
  auto it = reg.sites.find(site);
  return it != reg.sites.end() && it->second.fired;
}

Scope::Scope(std::string label) : previous_(t_scope) {
  t_scope = std::move(label);
}

Scope::~Scope() { t_scope = previous_; }

std::string currentScope() { return t_scope; }

}  // namespace nh::util::faultinject
