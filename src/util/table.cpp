#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace nh::util {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {}

void AsciiTable::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("AsciiTable::addRow: width mismatch");
  }
  rows_.push_back(std::move(row));
}

void AsciiTable::addNote(std::string note) { notes_.push_back(std::move(note)); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  }();

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  os << rule;
  const auto emitRow = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  emitRow(header_);
  os << rule;
  for (const auto& row : rows_) emitRow(row);
  os << rule;
  for (const auto& note : notes_) os << "  " << note << "\n";
  return os.str();
}

void AsciiTable::print() const { std::cout << render() << std::flush; }

std::string AsciiTable::fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string AsciiTable::scientific(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", decimals, v);
  return buf;
}

std::string AsciiTable::si(double v, const std::string& unit, int decimals) {
  struct Prefix {
    double factor;
    const char* name;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
      {1.0, ""},   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
  };
  if (v == 0.0) return "0 " + unit;
  const double mag = std::fabs(v);
  for (const auto& p : kPrefixes) {
    if (mag >= p.factor) {
      return fixed(v / p.factor, decimals) + " " + p.name + unit;
    }
  }
  return scientific(v, decimals) + " " + unit;
}

std::string AsciiTable::grouped(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace nh::util
