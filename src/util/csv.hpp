#pragma once
/// \file csv.hpp
/// Minimal CSV reader/writer used to export benchmark series (figure data)
/// and to load tabulated inputs. No quoting/escaping beyond what the project
/// itself emits (plain numeric/identifier fields).

#include <filesystem>
#include <string>
#include <vector>

namespace nh::util {

/// In-memory CSV table: a header row plus data rows of equal width.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t rowCount() const { return rows_.size(); }
  std::size_t columnCount() const { return header_.size(); }

  /// Append a row; width must match the header. Values are stringified
  /// with max_digits10 precision for doubles.
  void addRow(const std::vector<std::string>& row);
  void addRow(const std::vector<double>& row);

  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }
  /// Cell accessors (by index / by column name). Throw on bad access.
  const std::string& cell(std::size_t row, std::size_t col) const;
  double cellAsDouble(std::size_t row, std::size_t col) const;
  double cellAsDouble(std::size_t row, const std::string& columnName) const;
  /// Column index for \p name; throws std::out_of_range when absent.
  std::size_t columnIndex(const std::string& name) const;
  /// Entire column as doubles.
  std::vector<double> columnAsDouble(const std::string& name) const;

  /// Serialise to a string ("a,b\n1,2\n").
  std::string toString() const;
  /// Write to \p path (creates parent directories). Throws on I/O error.
  void save(const std::filesystem::path& path) const;
  /// Parse from a string; first line is the header.
  static CsvTable fromString(const std::string& text);
  /// Load from file. Throws on I/O or parse error.
  static CsvTable load(const std::filesystem::path& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with enough digits to round-trip.
std::string formatDouble(double v);

}  // namespace nh::util
