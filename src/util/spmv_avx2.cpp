/// \file spmv_avx2.cpp
/// AVX2 gather implementation of the SpMV row kernel. This is the only TU
/// compiled with -mavx2 (see the NH_SPMV_AVX2 block in CMakeLists.txt), so
/// nothing here may be called before the dispatcher has confirmed CPU
/// support. Compiled with -ffp-contract=off as well: the kernel must execute
/// the exact mul/add sequence of spmv::rowRangeReference -- each vector lane
/// stands in for one scalar accumulator, and the horizontal reduction
/// reproduces the reference's fixed parenthesisation -- so results are
/// bit-identical to the scalar path and FMA contraction is forbidden.

#if defined(NH_SPMV_AVX2)

#include <immintrin.h>

#include <cstddef>

#include "util/spmv.hpp"

namespace nh::util::spmv::detail {

namespace {

/// Horizontal reduce matching the scalar (a0+a1)+(a2+a3) order for lanes
/// [0..3] of \p v.
inline double reduce4(__m256d v) {
  alignas(32) double t[4];
  _mm256_store_pd(t, v);
  return (t[0] + t[1]) + (t[2] + t[3]);
}

inline __m256d gatherMul(const std::size_t* colIdx, const double* val,
                         const double* x, std::size_t k) {
  // size_t is 64-bit on every supported target; the index load is four
  // 64-bit lanes feeding a 64-bit-index double gather.
  static_assert(sizeof(std::size_t) == 8, "AVX2 SpMV assumes 64-bit size_t");
  const __m256i idx =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(colIdx + k));
  const __m256d gathered = _mm256_i64gather_pd(x, idx, 8);
  const __m256d coeffs = _mm256_loadu_pd(val + k);
  return _mm256_mul_pd(coeffs, gathered);
}

}  // namespace

void rowRangeAvx2(const std::size_t* rowPtr, const std::size_t* colIdx,
                  const double* val, const double* x, double* y,
                  std::size_t begin, std::size_t end) {
  for (std::size_t r = begin; r < end; ++r) {
    std::size_t k = rowPtr[r];
    const std::size_t kEnd = rowPtr[r + 1];
    double acc;
    if (kEnd - k >= kWideRowMinEntries) {
      // Two vector accumulators = the reference's eight scalar accumulators
      // (lanes 0..3 of acc03 are a0..a3, lanes of acc47 are a4..a7).
      __m256d acc03 = _mm256_setzero_pd();
      __m256d acc47 = _mm256_setzero_pd();
      for (; k + 8 <= kEnd; k += 8) {
        acc03 = _mm256_add_pd(acc03, gatherMul(colIdx, val, x, k));
        acc47 = _mm256_add_pd(acc47, gatherMul(colIdx, val, x, k + 4));
      }
      acc = reduce4(acc03) + reduce4(acc47);
    } else {
      __m256d acc03 = _mm256_setzero_pd();
      for (; k + 4 <= kEnd; k += 4) {
        acc03 = _mm256_add_pd(acc03, gatherMul(colIdx, val, x, k));
      }
      acc = reduce4(acc03);
    }
    for (; k < kEnd; ++k) acc += val[k] * x[colIdx[k]];
    y[r] = acc;
  }
}

}  // namespace nh::util::spmv::detail

#endif  // NH_SPMV_AVX2
