#pragma once
/// \file sparse.hpp
/// Compressed-sparse-row matrix plus a triplet (COO) builder. Used by the
/// finite-volume PDE solvers in nh::fem, where systems reach ~10^6 unknowns.
///
/// For solvers that repeatedly assemble a matrix with a fixed sparsity
/// structure (every sweep point re-stamps the same grid), the symbolic work
/// (bucketing, column sorting, duplicate merging) is split from the numeric
/// work: SparsityPattern captures the structure of one stamp sequence once,
/// after which SparsityPattern::assemble() refills a SparseMatrix in O(nnz)
/// with no sorting and no allocation.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/matrix.hpp"

namespace nh::util {

/// Coordinate-format accumulator: duplicate entries are summed on conversion,
/// which is exactly what stamp-style FEM/MNA assembly wants.
class TripletBuilder {
 public:
  TripletBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  /// Accumulate \p value at (\p r, \p c).
  void add(std::size_t r, std::size_t c, double value);
  /// Drop all entries but keep the allocation, so a cached builder can be
  /// re-stamped every solve without touching the heap.
  void clear() { entries_.clear(); }
  /// Number of accumulated (possibly duplicate) entries.
  std::size_t entryCount() const { return entries_.size(); }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  struct Entry {
    std::size_t row;
    std::size_t col;
    double value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Entry> entries_;
};

class SparsityPattern;

/// CSR sparse matrix. Immutable through the public interface; refilled in
/// place by SparsityPattern::assemble() for structure-reusing solvers.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  /// Build from a triplet accumulator (duplicates summed, rows sorted).
  static SparseMatrix fromTriplets(const TripletBuilder& builder);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonZeros() const { return values_.size(); }

  /// y = A * x.
  Vector multiply(const Vector& x) const;
  /// y = A * x without allocation; \p y must have rows() elements. Rows run
  /// through the process-best spmv kernel (AVX2 gather when available, the
  /// scalar reference otherwise -- bit-identical either way, see
  /// util/spmv.hpp). Large matrices split the row range over the shared
  /// thread pool; the result is bit-identical to the serial loop for any
  /// thread count (each row is one independent ordered accumulation).
  void multiplyInto(const Vector& x, Vector& y) const;

  /// y = A * x on the scalar reference kernel, single-threaded. The
  /// always-correct baseline the SIMD path is verified against; tests assert
  /// multiplyInto agrees with this bit-for-bit.
  void multiplyIntoReference(const Vector& x, Vector& y) const;

  /// Transposed copy, O(nnz); rows of the result keep sorted columns. Used
  /// to derive the multigrid restriction from the prolongation (R = P^T).
  SparseMatrix transposed() const;

  /// Value at (r, c); zero when the entry is not stored. O(log nnz(row)).
  double at(std::size_t r, std::size_t c) const;
  /// Extract the diagonal (missing entries read as zero).
  Vector diagonal() const;
  /// Extract the diagonal into \p d without allocation.
  void diagonalInto(Vector& d) const;
  /// True when the matrix equals its transpose within \p tol (used by tests
  /// and to validate that FEM assembly produced a symmetric operator).
  bool isSymmetric(double tol = 1e-12) const;

  // Raw CSR access for solver kernels.
  const std::vector<std::size_t>& rowPtr() const { return rowPtr_; }
  const std::vector<std::size_t>& colIdx() const { return colIdx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  friend class SparsityPattern;
  friend class SpGemmPlan;
  friend class TransposePlan;
  friend void multiplySparseInto(const SparseMatrix&, const SparseMatrix&,
                                 SparseMatrix&);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> rowPtr_;
  std::vector<std::size_t> colIdx_;
  std::vector<double> values_;
  /// Identity of the SparsityPattern whose structure this matrix carries
  /// (0 = none); lets assemble() skip the structure copy on refills.
  std::uint64_t patternId_ = 0;
};

/// Symbolic half of a CSR assembly: the merged, column-sorted structure of
/// one triplet stamp sequence plus the scatter map from each triplet entry
/// (in insertion order) to its CSR value slot.
///
/// Contract: every refill must issue the *same stamp sequence* (same
/// (row, col) pairs in the same order, values free to change) that built the
/// pattern -- exactly what a fixed-grid FEM/MNA assembly loop does. Duplicate
/// entries accumulate in insertion order both here and in
/// SparseMatrix::fromTriplets, so a cached refill is bit-identical to a fresh
/// build.
class SparsityPattern {
 public:
  SparsityPattern() = default;
  /// Symbolic phase: analyse \p builder once (bucket, stable-sort, merge).
  static SparsityPattern fromTriplets(const TripletBuilder& builder);

  bool empty() const { return rows_ == 0 && cols_ == 0; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonZeros() const { return colIdx_.size(); }
  /// Number of triplet entries the pattern was built from (every refill
  /// must present exactly this many).
  std::size_t entryCount() const { return scatter_.size(); }

  /// Numeric phase: refill \p out from \p builder in O(entryCount()).
  /// The structure is copied into \p out on first use; subsequent refills
  /// into the same matrix only rewrite the value array (no allocation).
  /// Throws std::invalid_argument when the entry count does not match.
  void assemble(const TripletBuilder& builder, SparseMatrix& out) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> rowPtr_;
  std::vector<std::size_t> colIdx_;
  std::vector<std::size_t> scatter_;  ///< triplet entry k -> CSR value slot.
  std::uint64_t id_ = 0;              ///< Process-unique (nonzero) identity.
};

/// Sparse-sparse product C = A * B (Gustavson row merge with a dense
/// accumulator; output rows column-sorted). The workhorse of the multigrid
/// Galerkin coarse-operator build A_c = R (A P).
SparseMatrix multiplySparse(const SparseMatrix& a, const SparseMatrix& b);

/// As multiplySparse, but writing into \p out: the CSR arrays are cleared
/// and refilled, so a caller that keeps \p out alive across calls reuses its
/// capacity instead of allocating a fresh product each time.
void multiplySparseInto(const SparseMatrix& a, const SparseMatrix& b,
                        SparseMatrix& out);

/// Symbolic-once/refill-values SpGEMM, the sparse-product analogue of
/// SparsityPattern::assemble. The first multiply() (or any call whose
/// operands changed structure) runs the full Gustavson SpGEMM and captures
/// the operand and product structures; every later call with structurally
/// identical operands refills the product values in O(flops) -- no symbolic
/// pass, no sort, no allocation -- and is bit-identical to the fresh product
/// (the refill replays the exact accumulation order).
///
/// This is what lets the multigrid Galerkin chain A_c = R (A P) rebuild in
/// O(nnz) when only the fine operator's *values* changed (frozen-hierarchy
/// re-solves across a sweep).
class SpGemmPlan {
 public:
  SpGemmPlan() = default;

  /// out = a * b, refilling through the cached structure when it matches.
  /// Throws std::invalid_argument on an inner-dimension mismatch.
  void multiply(const SparseMatrix& a, const SparseMatrix& b,
                SparseMatrix& out);

  /// True when the most recent multiply() took the O(flops) refill path.
  bool lastWasRefill() const { return lastWasRefill_; }
  /// Number of full symbolic SpGEMM runs this plan has performed. A frozen
  /// hierarchy should pin this at 1 -- asserted by BM_GalerkinRefill.
  std::size_t symbolicCount() const { return symbolicCount_; }

 private:
  bool matches(const SparseMatrix& a, const SparseMatrix& b) const;

  // Structure snapshots of the operands (for the match test) and of the
  // product (for the refill gather).
  std::vector<std::size_t> aRowPtr_, aColIdx_;
  std::vector<std::size_t> bRowPtr_, bColIdx_;
  std::vector<std::size_t> outRowPtr_, outColIdx_;
  std::size_t bCols_ = 0;    ///< Column count vectors alone can't pin down.
  std::vector<double> acc_;  ///< Dense per-row accumulator workspace.
  std::uint64_t id_ = 0;     ///< Pattern identity stamped into products.
  std::size_t symbolicCount_ = 0;
  bool lastWasRefill_ = false;
};

/// Symbolic-once/refill-values transpose: first transpose() runs the O(nnz)
/// counting sort and records the slot permutation; later calls on a matrix
/// with identical structure replay the permutation (a straight value
/// scatter, bit-identical to SparseMatrix::transposed).
class TransposePlan {
 public:
  TransposePlan() = default;

  /// out = a^T, refilling through the cached permutation when a's structure
  /// matches the captured one.
  void transpose(const SparseMatrix& a, SparseMatrix& out);

  bool lastWasRefill() const { return lastWasRefill_; }
  std::size_t symbolicCount() const { return symbolicCount_; }

 private:
  std::vector<std::size_t> aRowPtr_, aColIdx_;
  std::vector<std::size_t> outRowPtr_, outColIdx_;
  std::vector<std::size_t> scatter_;  ///< source value slot -> dest slot.
  std::uint64_t id_ = 0;
  std::size_t symbolicCount_ = 0;
  bool lastWasRefill_ = false;
};

}  // namespace nh::util
