#pragma once
/// \file sparse.hpp
/// Compressed-sparse-row matrix plus a triplet (COO) builder. Used by the
/// finite-volume PDE solvers in nh::fem, where systems reach ~10^6 unknowns.

#include <cstddef>
#include <vector>

#include "util/matrix.hpp"

namespace nh::util {

/// Coordinate-format accumulator: duplicate entries are summed on conversion,
/// which is exactly what stamp-style FEM/MNA assembly wants.
class TripletBuilder {
 public:
  TripletBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  /// Accumulate \p value at (\p r, \p c).
  void add(std::size_t r, std::size_t c, double value);
  /// Number of accumulated (possibly duplicate) entries.
  std::size_t entryCount() const { return entries_.size(); }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  struct Entry {
    std::size_t row;
    std::size_t col;
    double value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Entry> entries_;
};

/// Immutable CSR sparse matrix.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  /// Build from a triplet accumulator (duplicates summed, rows sorted).
  static SparseMatrix fromTriplets(const TripletBuilder& builder);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonZeros() const { return values_.size(); }

  /// y = A * x.
  Vector multiply(const Vector& x) const;
  /// y = A * x without allocation; \p y must have rows() elements.
  void multiplyInto(const Vector& x, Vector& y) const;

  /// Value at (r, c); zero when the entry is not stored. O(log nnz(row)).
  double at(std::size_t r, std::size_t c) const;
  /// Extract the diagonal (missing entries read as zero).
  Vector diagonal() const;
  /// True when the matrix equals its transpose within \p tol (used by tests
  /// and to validate that FEM assembly produced a symmetric operator).
  bool isSymmetric(double tol = 1e-12) const;

  // Raw CSR access for solver kernels.
  const std::vector<std::size_t>& rowPtr() const { return rowPtr_; }
  const std::vector<std::size_t>& colIdx() const { return colIdx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> rowPtr_;
  std::vector<std::size_t> colIdx_;
  std::vector<double> values_;
};

}  // namespace nh::util
