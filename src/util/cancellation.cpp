#include "util/cancellation.hpp"

#include <atomic>

namespace nh::util {

namespace detail {
struct CancelState {
  std::atomic<bool> cancelled{false};
  bool hasDeadline = false;
  std::chrono::steady_clock::time_point deadline{};
};
}  // namespace detail

namespace {
bool deadlinePassed(const detail::CancelState& state) {
  return state.hasDeadline && std::chrono::steady_clock::now() >= state.deadline;
}

thread_local CancellationToken t_currentToken;
}  // namespace

bool CancellationToken::cancelled() const {
  if (!state_) return false;
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  return deadlinePassed(*state_);
}

bool CancellationToken::deadlineExpired() const {
  if (!state_) return false;
  // An explicit cancel() wins over a deadline that happens to have passed
  // too: the caller asked first.
  if (state_->cancelled.load(std::memory_order_relaxed)) return false;
  return deadlinePassed(*state_);
}

void CancellationToken::throwIfCancelled(const char* site) const {
  if (!state_) return;
  const bool byDeadline = deadlineExpired();
  if (byDeadline || cancelled()) {
    throw CancelledError(std::string(byDeadline ? "deadline expired in "
                                                : "cancelled in ") +
                             site,
                         byDeadline);
  }
}

CancellationSource::CancellationSource()
    : state_(std::make_shared<detail::CancelState>()) {}

CancellationSource CancellationSource::withDeadline(double seconds) {
  CancellationSource source;
  source.state_->hasDeadline = true;
  source.state_->deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  return source;
}

void CancellationSource::cancel() {
  state_->cancelled.store(true, std::memory_order_relaxed);
}

CancellationScope::CancellationScope(CancellationToken token)
    : previous_(t_currentToken) {
  t_currentToken = std::move(token);
}

CancellationScope::~CancellationScope() { t_currentToken = previous_; }

CancellationToken currentCancellation() { return t_currentToken; }

void checkCancellation(const char* site) {
  t_currentToken.throwIfCancelled(site);
}

}  // namespace nh::util
