#include "util/linsolve.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/cancellation.hpp"
#include "util/faultinject.hpp"
#include "util/multigrid.hpp"

namespace nh::util {

namespace {
/// Sentinel for SparseLu's row -> pivot-position map.
constexpr std::size_t kUnpivoted = static_cast<std::size_t>(-1);

std::string solverErrorMessage(const std::string& solve,
                               const std::string& detail,
                               std::size_t iterations, double residualNorm) {
  std::ostringstream out;
  out << solve << ": " << detail;
  if (iterations > 0 || residualNorm != 0.0) {
    out << " (iterations=" << iterations << ", residual=" << residualNorm
        << ")";
  }
  return out.str();
}
}  // namespace

SolverError::SolverError(const std::string& solve, const std::string& detail,
                         std::size_t iterations, double residualNorm)
    : std::runtime_error(
          solverErrorMessage(solve, detail, iterations, residualNorm)),
      solve_(solve),
      iterations_(iterations),
      residualNorm_(residualNorm) {}

CgWorkspace::CgWorkspace() = default;
CgWorkspace::~CgWorkspace() = default;
CgWorkspace::CgWorkspace(CgWorkspace&&) noexcept = default;
CgWorkspace& CgWorkspace::operator=(CgWorkspace&&) noexcept = default;

std::optional<LuFactorization> LuFactorization::factor(const Matrix& a) {
  LuFactorization f;
  if (!f.refactor(a)) return std::nullopt;
  return f;
}

bool LuFactorization::refactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  const std::size_t n = a.rows();
  valid_ = false;
  // Fault site: tests force a "numerically singular" outcome to exercise the
  // failure paths downstream of a real pivot breakdown.
  if (faultinject::shouldFire("linsolve.dense_lu")) return false;
  lu_ = a;  // reuses the existing allocation when the size is unchanged
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;  // numerically singular
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) * inv;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
  valid_ = true;
  return true;
}

Vector LuFactorization::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LuFactorization::solve: size mismatch");
  Vector x(n);
  // Apply permutation, then forward substitution (unit lower triangle).
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution (upper triangle).
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

void LuFactorization::solveInPlace(Vector& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuFactorization::solveInPlace: size mismatch");
  }
  scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch_[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = scratch_[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * scratch_[j];
    scratch_[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = scratch_[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * scratch_[j];
    scratch_[ii] = acc / lu_(ii, ii);
  }
  std::copy(scratch_.begin(), scratch_.end(), b.begin());
}

double LuFactorization::absDeterminant() const {
  double det = 1.0;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= std::fabs(lu_(i, i));
  return det;
}

Vector solveDense(const Matrix& a, const Vector& b) {
  auto f = LuFactorization::factor(a);
  if (!f) throw std::runtime_error("solveDense: singular matrix");
  return f->solve(b);
}

bool SchurComplementSolver::solve(const Vector& d1, const Vector& d2,
                                  const Matrix& g, const Vector& r, Vector& x) {
  const std::size_t n1 = d1.size();
  const std::size_t n2 = d2.size();
  if (g.rows() != n1 || g.cols() != n2 || r.size() != n1 + n2) {
    throw std::invalid_argument("SchurComplementSolver: shape mismatch");
  }
  if (schur_.rows() != n2 || schur_.cols() != n2) schur_.resize(n2, n2, 0.0);
  schur_.fill(0.0);
  rhs_.resize(n2);
  for (std::size_t c = 0; c < n2; ++c) rhs_[c] = r[n1 + c];

  // S = diag(d2) - G^T diag(d1)^-1 G, accumulated row-by-row of G so the
  // inner loops stream one cached row; S is symmetric, fill the upper
  // triangle and mirror.
  for (std::size_t i = 0; i < n1; ++i) {
    const double invD = 1.0 / d1[i];
    const double scaledRes = r[i] * invD;
    const double* row = g.data() + i * n2;
    for (std::size_t c1 = 0; c1 < n2; ++c1) {
      const double gScaled = row[c1] * invD;
      rhs_[c1] += row[c1] * scaledRes;
      double* s = schur_.data() + c1 * n2;
      for (std::size_t c2 = c1; c2 < n2; ++c2) s[c2] -= gScaled * row[c2];
    }
  }
  for (std::size_t c1 = 0; c1 < n2; ++c1) {
    schur_(c1, c1) += d2[c1];
    for (std::size_t c2 = 0; c2 < c1; ++c2) schur_(c1, c2) = schur_(c2, c1);
  }

  if (!lu_.refactor(schur_)) return false;
  lu_.solveInPlace(rhs_);  // now x2

  x.resize(n1 + n2);
  for (std::size_t i = 0; i < n1; ++i) {
    double acc = r[i];
    const double* row = g.data() + i * n2;
    for (std::size_t c = 0; c < n2; ++c) acc += row[c] * rhs_[c];
    x[i] = acc / d1[i];
  }
  for (std::size_t c = 0; c < n2; ++c) x[n1 + c] = rhs_[c];
  return true;
}

SchurComplementSolver::SchurComplementSolver() = default;
SchurComplementSolver::SchurComplementSolver(SchurOptions options)
    : options_(options) {}
SchurComplementSolver::~SchurComplementSolver() = default;
SchurComplementSolver::SchurComplementSolver(SchurComplementSolver&&) noexcept =
    default;
SchurComplementSolver& SchurComplementSolver::operator=(
    SchurComplementSolver&&) noexcept = default;

bool TridiagonalFactor::factor(const TridiagonalView& a) {
  valid_ = false;
  const std::size_t n = a.n;
  if (n == 0 || a.diag == nullptr) return false;
  m_.resize(n);
  c_.resize(n - 1);
  lower_.resize(n - 1);
  if (a.lower != nullptr) {
    std::copy(a.lower, a.lower + (n - 1), lower_.begin());
  } else {
    std::fill(lower_.begin(), lower_.end(), 0.0);
  }

  // Thomas elimination, same recurrences as solveTridiagonal: the scaled
  // upper diagonal c and the pivots m are all a solve needs.
  double m = a.diag[0];
  if (!(std::fabs(m) > 1e-300) || !std::isfinite(m)) return false;
  m_[0] = m;
  for (std::size_t i = 1; i < n; ++i) {
    const double u = a.upper != nullptr ? a.upper[i - 1] : 0.0;
    c_[i - 1] = u / m_[i - 1];
    m = a.diag[i] - lower_[i - 1] * c_[i - 1];
    if (!(std::fabs(m) > 1e-300) || !std::isfinite(m)) return false;
    m_[i] = m;
  }
  valid_ = true;
  return true;
}

void TridiagonalFactor::solveInPlace(Vector& b) const {
  assert(b.size() == m_.size());
  solveInPlace(b.data());
}

void TridiagonalFactor::solveInPlace(double* b) const {
  assert(valid_);
  const std::size_t n = m_.size();
  b[0] /= m_[0];
  for (std::size_t i = 1; i < n; ++i) {
    b[i] = (b[i] - lower_[i - 1] * b[i - 1]) / m_[i];
  }
  for (std::size_t ii = n - 1; ii-- > 0;) b[ii] -= c_[ii] * b[ii + 1];
}

void TridiagonalFactor::solveRowsInPlace(Matrix& b) const {
  assert(valid_);
  assert(b.rows() == m_.size());
  const std::size_t n = m_.size();
  const std::size_t m = b.cols();
  double* row0 = b.data();
  const double inv0 = 1.0 / m_[0];
  for (std::size_t c = 0; c < m; ++c) row0[c] *= inv0;
  for (std::size_t i = 1; i < n; ++i) {
    double* row = b.data() + i * m;
    const double* prev = row - m;
    const double l = lower_[i - 1];
    const double inv = 1.0 / m_[i];
    for (std::size_t c = 0; c < m; ++c) row[c] = (row[c] - l * prev[c]) * inv;
  }
  for (std::size_t ii = n - 1; ii-- > 0;) {
    double* row = b.data() + ii * m;
    const double* next = row + m;
    const double ci = c_[ii];
    for (std::size_t c = 0; c < m; ++c) row[c] -= ci * next[c];
  }
}

namespace {

/// y = A v for a tridiagonal view.
void tridiagonalMultiply(const TridiagonalView& a, const Vector& v, Vector& y) {
  const std::size_t n = a.n;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = a.diag[i] * v[i];
    if (a.lower != nullptr && i > 0) acc += a.lower[i - 1] * v[i - 1];
    if (a.upper != nullptr && i + 1 < n) acc += a.upper[i] * v[i + 1];
    y[i] = acc;
  }
}

}  // namespace

bool SchurComplementSolver::solveBanded(const TridiagonalView& a1,
                                        const TridiagonalView& a2,
                                        const Matrix& g, const Vector& r,
                                        Vector& x) {
  if (g.rows() != a1.n || g.cols() != a2.n || r.size() != a1.n + a2.n) {
    throw std::invalid_argument("SchurComplementSolver::solveBanded: shape mismatch");
  }
  lastIterative_ = {};
  bool iterative = false;
  switch (options_.mode) {
    case SchurOptions::Mode::Dense:
      break;
    case SchurOptions::Mode::Iterative:
      iterative = true;
      break;
    case SchurOptions::Mode::Auto:
      iterative = a2.n >= options_.iterativeMinCols;
      break;
  }
  return iterative ? solveBandedIterative(a1, a2, g, r, x)
                   : solveBandedDense(a1, a2, g, r, x);
}

bool SchurComplementSolver::solveBandedDense(const TridiagonalView& a1,
                                             const TridiagonalView& a2,
                                             const Matrix& g, const Vector& r,
                                             Vector& x) {
  const std::size_t n1 = a1.n;
  const std::size_t n2 = a2.n;
  if (!a1Factor_.factor(a1)) return false;

  // W = A1^-1 G, all columns at once: the Thomas recurrences are per
  // column, but sweeping whole rows keeps the row-major accesses streaming.
  if (w_.rows() != n1 || w_.cols() != n2) w_.resize(n1, n2, 0.0);
  std::copy(g.data(), g.data() + n1 * n2, w_.data());
  a1Factor_.solveRowsInPlace(w_);

  // S = A2 - G^T W and rhs2 = r2 + G^T (A1^-1 r1).
  t1_.assign(r.begin(), r.begin() + n1);
  a1Factor_.solveInPlace(t1_);
  if (schur_.rows() != n2 || schur_.cols() != n2) schur_.resize(n2, n2, 0.0);
  schur_.fill(0.0);
  rhs_.resize(n2);
  for (std::size_t c = 0; c < n2; ++c) rhs_[c] = r[n1 + c];
  for (std::size_t i = 0; i < n1; ++i) {
    const double* gRow = g.data() + i * n2;
    const double* wRow = w_.data() + i * n2;
    const double t1i = t1_[i];
    for (std::size_t c1 = 0; c1 < n2; ++c1) {
      const double gv = gRow[c1];
      rhs_[c1] += gv * t1i;
      if (gv == 0.0) continue;
      double* s = schur_.data() + c1 * n2;
      for (std::size_t c2 = 0; c2 < n2; ++c2) s[c2] -= gv * wRow[c2];
    }
  }
  for (std::size_t c = 0; c < n2; ++c) {
    schur_(c, c) += a2.diag[c];
    if (a2.lower != nullptr && c > 0) schur_(c, c - 1) += a2.lower[c - 1];
    if (a2.upper != nullptr && c + 1 < n2) schur_(c, c + 1) += a2.upper[c];
  }

  if (!lu_.refactor(schur_)) return false;
  lu_.solveInPlace(rhs_);  // now x2

  x.resize(n1 + n2);
  for (std::size_t i = 0; i < n1; ++i) {
    double acc = r[i];
    const double* gRow = g.data() + i * n2;
    for (std::size_t c = 0; c < n2; ++c) acc += gRow[c] * rhs_[c];
    x[i] = acc;
  }
  a1Factor_.solveInPlace(x.data());
  for (std::size_t c = 0; c < n2; ++c) x[n1 + c] = rhs_[c];
  return true;
}

bool SchurComplementSolver::solveBandedIterative(const TridiagonalView& a1,
                                                 const TridiagonalView& a2,
                                                 const Matrix& g,
                                                 const Vector& r, Vector& x) {
  const std::size_t n1 = a1.n;
  const std::size_t n2 = a2.n;
  if (!a1Factor_.factor(a1)) return false;

  // rhs2 = r2 + G^T (A1^-1 r1).
  t1_.assign(r.begin(), r.begin() + n1);
  a1Factor_.solveInPlace(t1_);
  rhs_.resize(n2);
  for (std::size_t c = 0; c < n2; ++c) rhs_[c] = r[n1 + c];
  for (std::size_t i = 0; i < n1; ++i) {
    const double* gRow = g.data() + i * n2;
    const double t1i = t1_[i];
    if (t1i == 0.0) continue;
    for (std::size_t c = 0; c < n2; ++c) rhs_[c] += gRow[c] * t1i;
  }

  // Jacobi preconditioner on diag(S) = diag(A2) - sum_i g(i,c)^2 / a1(i,i)
  // -- exact for a diagonal A1 (the lumped line network), a close
  // approximation for the diagonally dominant tridiagonal case.
  invDiag_.assign(n2, 0.0);
  for (std::size_t i = 0; i < n1; ++i) {
    const double* gRow = g.data() + i * n2;
    const double invA1 = 1.0 / a1.diag[i];
    for (std::size_t c = 0; c < n2; ++c) {
      invDiag_[c] += gRow[c] * gRow[c] * invA1;
    }
  }
  for (std::size_t c = 0; c < n2; ++c) {
    const double d = a2.diag[c] - invDiag_[c];
    invDiag_[c] = std::fabs(d) > 1e-300 ? 1.0 / d : 1.0;
  }

  // Matrix-free S x = A2 x - G^T (A1^-1 (G x)): O(n1 n2) per application,
  // never materialising the (fully dense) complement.
  const auto applyS = [&](const Vector& v, Vector& y) {
    t1_.resize(n1);
    for (std::size_t i = 0; i < n1; ++i) {
      const double* gRow = g.data() + i * n2;
      double acc = 0.0;
      for (std::size_t c = 0; c < n2; ++c) acc += gRow[c] * v[c];
      t1_[i] = acc;
    }
    a1Factor_.solveInPlace(t1_);
    tridiagonalMultiply(a2, v, y);
    for (std::size_t i = 0; i < n1; ++i) {
      const double* gRow = g.data() + i * n2;
      const double t1i = t1_[i];
      if (t1i == 0.0) continue;
      for (std::size_t c = 0; c < n2; ++c) y[c] -= gRow[c] * t1i;
    }
  };

  if (!cgWs_) cgWs_ = std::make_unique<CgWorkspace>();
  x2_.assign(n2, 0.0);
  lastIterative_ =
      solveConjugateGradientOperator(n2, applyS, invDiag_, rhs_, x2_,
                                     options_.cgRelTol, options_.cgMaxIter,
                                     cgWs_.get());
  if (!lastIterative_.converged) return false;

  x.resize(n1 + n2);
  for (std::size_t i = 0; i < n1; ++i) {
    double acc = r[i];
    const double* gRow = g.data() + i * n2;
    for (std::size_t c = 0; c < n2; ++c) acc += gRow[c] * x2_[c];
    x[i] = acc;
  }
  a1Factor_.solveInPlace(x.data());
  for (std::size_t c = 0; c < n2; ++c) x[n1 + c] = x2_[c];
  return true;
}

bool IncompleteCholesky::compute(const SparseMatrix& a) {
  valid_ = false;
  if (a.rows() != a.cols()) return false;
  n_ = a.rows();
  const auto& aRowPtr = a.rowPtr();
  const auto& aColIdx = a.colIdx();
  const auto& aValues = a.values();

  // Extract the lower-triangle structure (cols <= r, diagonal last in each
  // row since CSR rows are column-sorted). Buffers keep their allocation
  // across refactorisations of same-structure matrices.
  rowPtr_.resize(n_ + 1);
  rowPtr_[0] = 0;
  std::size_t nnz = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = aRowPtr[r]; k < aRowPtr[r + 1] && aColIdx[k] <= r; ++k) {
      ++nnz;
    }
    rowPtr_[r + 1] = nnz;
  }
  colIdx_.resize(nnz);
  val_.resize(nnz);
  for (std::size_t r = 0; r < n_; ++r) {
    std::size_t out = rowPtr_[r];
    for (std::size_t k = aRowPtr[r]; k < aRowPtr[r + 1] && aColIdx[k] <= r; ++k) {
      colIdx_[out] = aColIdx[k];
      val_[out] = aValues[k];
      ++out;
    }
    // IC(0) needs every diagonal entry present.
    if (rowPtr_[r + 1] == rowPtr_[r] || colIdx_[rowPtr_[r + 1] - 1] != r) {
      return false;
    }
  }

  // Up-looking factorisation restricted to the pattern of L:
  //   L(i,j) = (A(i,j) - sum_{p<j} L(i,p) L(j,p)) / L(j,j)     for j < i
  //   L(i,i) = sqrt(A(i,i) - sum_{p<i} L(i,p)^2)
  // The inner sums intersect two already-computed sparse rows (two-pointer
  // merge); with the ~7-entry stencil rows of the FV operators this is O(nnz).
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t rowBegin = rowPtr_[i];
    const std::size_t rowEnd = rowPtr_[i + 1];
    for (std::size_t idx = rowBegin; idx < rowEnd; ++idx) {
      const std::size_t j = colIdx_[idx];
      double s = val_[idx];
      const std::size_t jEnd = rowPtr_[j + 1] - 1;  // exclude L(j,j)
      std::size_t ka = rowBegin;
      std::size_t kb = rowPtr_[j];
      while (ka < idx && kb < jEnd) {
        const std::size_t ca = colIdx_[ka];
        const std::size_t cb = colIdx_[kb];
        if (ca == cb) {
          s -= val_[ka] * val_[kb];
          ++ka;
          ++kb;
        } else if (ca < cb) {
          ++ka;
        } else {
          ++kb;
        }
      }
      if (j < i) {
        val_[idx] = s / val_[jEnd];  // jEnd points at L(j,j)
      } else {
        if (!(s > 0.0) || !std::isfinite(s)) return false;  // not SPD
        val_[idx] = std::sqrt(s);
      }
    }
  }
  valid_ = true;
  return true;
}

void IncompleteCholesky::apply(const Vector& r, Vector& z) const {
  assert(valid_);
  assert(r.size() == n_);
  if (z.size() != n_) z.resize(n_);
  const double* val = val_.data();
  const std::size_t* col = colIdx_.data();
  // Forward solve L y = r (diagonal is the last entry of each row). The
  // gather is unrolled two-wide with independent accumulators -- the FV
  // stencil rows carry 3-4 strictly-lower entries, so wider unrolls only
  // add cleanup overhead.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t diag = rowPtr_[i + 1] - 1;
    std::size_t k = rowPtr_[i];
    double a0 = 0.0, a1 = 0.0;
    for (; k + 2 <= diag; k += 2) {
      a0 += val[k] * z[col[k]];
      a1 += val[k + 1] * z[col[k + 1]];
    }
    double acc = r[i] - (a0 + a1);
    for (; k < diag; ++k) acc -= val[k] * z[col[k]];
    z[i] = acc / val[diag];
  }
  // Backward solve L^T z = y, column-oriented over the rows of L (a scatter:
  // each row's updates hit distinct columns, so the pair is independent).
  for (std::size_t ii = n_; ii-- > 0;) {
    const std::size_t diag = rowPtr_[ii + 1] - 1;
    const double zi = z[ii] / val[diag];
    z[ii] = zi;
    std::size_t k = rowPtr_[ii];
    for (; k + 2 <= diag; k += 2) {
      z[col[k]] -= val[k] * zi;
      z[col[k + 1]] -= val[k + 1] * zi;
    }
    for (; k < diag; ++k) z[col[k]] -= val[k] * zi;
  }
}

IterativeResult solveConjugateGradient(const SparseMatrix& a, const Vector& b,
                                       Vector& x, const CgOptions& options,
                                       CgWorkspace* workspace) {
  const std::size_t n = b.size();
  assert(a.rows() == n && a.cols() == n);
  if (x.size() != n) x.assign(n, 0.0);

  CgWorkspace local;
  CgWorkspace& ws = workspace != nullptr ? *workspace : local;

  // Preconditioner ladder: Multigrid -> IC(0) -> Jacobi, each rung falling
  // back to the next when it is inapplicable or breaks down.
  bool useMg = options.preconditioner == CgPreconditioner::Multigrid;
  if (useMg) {
    if (!ws.mg_) ws.mg_ = std::make_unique<GeometricMultigrid>();
    if (options.reusePreconditioner && ws.mgFailed_) {
      useMg = false;  // same frozen matrix was already rejected once
    } else if (!(options.reusePreconditioner && ws.mg_->valid() &&
                 ws.mg_->fineMatrix() == &a)) {
      // The address check downgrades a reuse request on a *different*
      // matrix object to a rebuild: the hierarchy smooths through a pointer
      // to the fine matrix, unlike IC(0) which copies its factor.
      GeometricMultigrid::Options mgOptions;
      mgOptions.nx = options.gridNx;
      mgOptions.ny = options.gridNy;
      mgOptions.nz = options.gridNz;
      mgOptions.smoother = options.multigridSmoother;
      useMg = ws.mg_->compute(a, mgOptions);
      ws.mgFailed_ = !useMg;
    }
  }
  bool useIc =
      !useMg && options.preconditioner != CgPreconditioner::Jacobi;
  if (useIc) {
    if (options.reusePreconditioner && ws.icFailed_) {
      useIc = false;  // same frozen matrix already broke down once
    } else if (!(options.reusePreconditioner && ws.ic_.valid())) {
      useIc = ws.ic_.compute(a);  // breakdown -> Jacobi fallback
      ws.icFailed_ = !useIc;
    }
  }
  if (!useMg && !useIc) {
    // Jacobi preconditioner M^-1 = 1/diag(A).
    a.diagonalInto(ws.invDiag_);
    for (auto& d : ws.invDiag_) d = (std::fabs(d) > 1e-300) ? 1.0 / d : 1.0;
  }

  Vector& r = ws.r_;
  Vector& z = ws.z_;
  Vector& p = ws.p_;
  Vector& ap = ws.ap_;
  r.resize(n);
  z.resize(n);
  p.resize(n);
  ap.resize(n);

  a.multiplyInto(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  const double bNorm = norm2(b);
  if (bNorm == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0};
  }

  const auto applyPreconditioner = [&] {
    if (useMg) {
      ws.mg_->apply(r, z);
    } else if (useIc) {
      ws.ic_.apply(r, z);
    } else {
      for (std::size_t i = 0; i < n; ++i) z[i] = ws.invDiag_[i] * r[i];
    }
  };

  applyPreconditioner();
  std::copy(z.begin(), z.end(), p.begin());
  double rz = dot(r, z);

  IterativeResult result;
  // Fault site: force an immediate non-converged return so tests can walk
  // the "CG did not converge" paths without constructing a hard system.
  if (faultinject::shouldFire("linsolve.cg")) {
    result.breakdown = true;
    return result;
  }
  for (std::size_t it = 0; it < options.maxIter; ++it) {
    checkCancellation("conjugate gradient");
    a.multiplyInto(p, ap);
    const double pap = dot(p, ap);
    if (!(pap > 0.0)) {  // not SPD, breakdown, or NaN/Inf poisoning
      result.breakdown = !std::isfinite(pap);
      break;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double res = norm2(r) / bNorm;
    result.iterations = it + 1;
    result.residualNorm = res;
    if (!std::isfinite(res)) {  // fail fast instead of iterating to the cap
      result.breakdown = true;
      break;
    }
    if (res < options.relTol) {
      result.converged = true;
      return result;
    }
    applyPreconditioner();
    const double rzNew = dot(r, z);
    const double beta = rzNew / rz;
    rz = rzNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

IterativeResult solveConjugateGradient(const SparseMatrix& a, const Vector& b,
                                       Vector& x, double relTol,
                                       std::size_t maxIter) {
  CgOptions options;
  options.relTol = relTol;
  options.maxIter = maxIter;
  return solveConjugateGradient(a, b, x, options, nullptr);
}

IterativeResult solveConjugateGradientOperator(
    std::size_t n, const std::function<void(const Vector&, Vector&)>& applyA,
    const Vector& invDiag, const Vector& b, Vector& x, double relTol,
    std::size_t maxIter, CgWorkspace* workspace) {
  assert(invDiag.size() == n && b.size() == n);
  if (x.size() != n) x.assign(n, 0.0);

  CgWorkspace local;
  CgWorkspace& ws = workspace != nullptr ? *workspace : local;
  Vector& r = ws.r_;
  Vector& z = ws.z_;
  Vector& p = ws.p_;
  Vector& ap = ws.ap_;
  r.resize(n);
  z.resize(n);
  p.resize(n);
  ap.resize(n);

  applyA(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  const double bNorm = norm2(b);
  if (bNorm == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0};
  }

  for (std::size_t i = 0; i < n; ++i) z[i] = invDiag[i] * r[i];
  std::copy(z.begin(), z.end(), p.begin());
  double rz = dot(r, z);

  IterativeResult result;
  // Same fault site as the assembled-matrix CG: both are "CG convergence".
  if (faultinject::shouldFire("linsolve.cg")) {
    result.breakdown = true;
    return result;
  }
  for (std::size_t it = 0; it < maxIter; ++it) {
    checkCancellation("conjugate gradient");
    applyA(p, ap);
    const double pap = dot(p, ap);
    if (!(pap > 0.0)) {  // not SPD, breakdown, or NaN/Inf poisoning
      result.breakdown = !std::isfinite(pap);
      break;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double res = norm2(r) / bNorm;
    result.iterations = it + 1;
    result.residualNorm = res;
    if (!std::isfinite(res)) {  // fail fast instead of iterating to the cap
      result.breakdown = true;
      break;
    }
    if (res < relTol) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = invDiag[i] * r[i];
    const double rzNew = dot(r, z);
    const double beta = rzNew / rz;
    rz = rzNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

IterativeResult solveBiCgStab(const SparseMatrix& a, const Vector& b, Vector& x,
                              double relTol, std::size_t maxIter) {
  const std::size_t n = b.size();
  assert(a.rows() == n && a.cols() == n);
  if (x.size() != n) x.assign(n, 0.0);

  Vector invDiag = a.diagonal();
  for (auto& d : invDiag) d = (std::fabs(d) > 1e-300) ? 1.0 / d : 1.0;

  Vector r(n), rHat(n), p(n, 0.0), v(n, 0.0), s(n), t(n), y(n), z(n);
  a.multiplyInto(x, v);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - v[i];
  rHat = r;
  const double bNorm = norm2(b);
  if (bNorm == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0};
  }

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  std::fill(v.begin(), v.end(), 0.0);

  IterativeResult result;
  for (std::size_t it = 0; it < maxIter; ++it) {
    checkCancellation("bicgstab");
    const double rhoNew = dot(rHat, r);
    if (!std::isfinite(rhoNew)) {
      result.breakdown = true;
      break;
    }
    if (std::fabs(rhoNew) < 1e-300) break;
    const double beta = (rhoNew / rho) * (alpha / omega);
    rho = rhoNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    for (std::size_t i = 0; i < n; ++i) y[i] = invDiag[i] * p[i];
    a.multiplyInto(y, v);
    alpha = rho / dot(rHat, v);
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (norm2(s) / bNorm < relTol) {
      axpy(alpha, y, x);
      result.converged = true;
      result.iterations = it + 1;
      result.residualNorm = norm2(s) / bNorm;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = invDiag[i] * s[i];
    a.multiplyInto(z, t);
    const double tt = dot(t, t);
    if (tt < 1e-300) break;
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * y[i] + omega * z[i];
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];
    const double res = norm2(r) / bNorm;
    result.iterations = it + 1;
    result.residualNorm = res;
    if (res < relTol) {
      result.converged = true;
      return result;
    }
    if (std::fabs(omega) < 1e-300) break;
  }
  return result;
}

Vector solveTridiagonal(const Vector& lower, const Vector& diag,
                        const Vector& upper, const Vector& rhs) {
  const std::size_t n = diag.size();
  if (lower.size() != n - 1 || upper.size() != n - 1 || rhs.size() != n) {
    throw std::invalid_argument("solveTridiagonal: size mismatch");
  }
  Vector c(n - 1), d(n);
  c[0] = upper[0] / diag[0];
  d[0] = rhs[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double m = diag[i] - lower[i - 1] * (i - 1 < c.size() ? c[i - 1] : 0.0);
    if (i < n - 1) c[i] = upper[i] / m;
    d[i] = (rhs[i] - lower[i - 1] * d[i - 1]) / m;
  }
  Vector x(n);
  x[n - 1] = d[n - 1];
  for (std::size_t ii = n - 1; ii-- > 0;) x[ii] = d[ii] - c[ii] * x[ii + 1];
  return x;
}

void SparseLu::computeOrdering(const SparseMatrix& a) {
  const auto& rowPtr = a.rowPtr();
  const auto& colIdx = a.colIdx();
  const std::size_t n = a.rows();
  perm_.resize(n);
  iperm_.resize(n);
  if (n == 0) return;

  // Symmetrised adjacency: the pattern of A + A^T with the diagonal
  // dropped. Entries present in both triangles appear twice; BFS dedups
  // them via the seen marks and RCM only uses degrees as a heuristic, so
  // the duplicates are harmless.
  std::vector<std::size_t> adjPtr(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      const std::size_t c = colIdx[k];
      if (c == r) continue;
      ++adjPtr[r + 1];
      ++adjPtr[c + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) adjPtr[v + 1] += adjPtr[v];
  std::vector<std::size_t> adj(adjPtr[n]);
  std::vector<std::size_t> cursor(adjPtr.begin(), adjPtr.begin() + n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      const std::size_t c = colIdx[k];
      if (c == r) continue;
      adj[cursor[r]++] = c;
      adj[cursor[c]++] = r;
    }
  }
  std::vector<std::size_t> deg(n);
  for (std::size_t v = 0; v < n; ++v) deg[v] = adjPtr[v + 1] - adjPtr[v];
  const auto byDegree = [&](std::size_t x, std::size_t y) {
    return deg[x] < deg[y] || (deg[x] == deg[y] && x < y);
  };

  // Level-structure BFS with degree-sorted neighbour visits (Cuthill-McKee
  // order). Fills `out` with the start's component and returns a
  // minimum-degree vertex of the deepest level (for the pseudo-peripheral
  // start refinement).
  std::vector<std::size_t> seen(n, 0);
  std::size_t stamp = 0;
  const auto bfs = [&](std::size_t start, std::vector<std::size_t>& out) {
    ++stamp;
    out.clear();
    out.push_back(start);
    seen[start] = stamp;
    std::size_t levelBegin = 0;
    std::size_t levelEnd = 1;
    while (true) {
      for (std::size_t h = levelBegin; h < levelEnd; ++h) {
        const std::size_t v = out[h];
        const std::size_t first = out.size();
        for (std::size_t p = adjPtr[v]; p < adjPtr[v + 1]; ++p) {
          const std::size_t w = adj[p];
          if (seen[w] == stamp) continue;
          seen[w] = stamp;
          out.push_back(w);
        }
        std::sort(out.begin() + first, out.end(), byDegree);
      }
      if (out.size() == levelEnd) break;  // deepest level reached
      levelBegin = levelEnd;
      levelEnd = out.size();
    }
    return *std::min_element(out.begin() + levelBegin, out.begin() + levelEnd,
                             byDegree);
  };

  // Component starts: lowest-degree unvisited vertex, via a degree-sorted
  // candidate sweep (amortised O(n log n) across all components).
  std::vector<std::size_t> candidates(n);
  for (std::size_t v = 0; v < n; ++v) candidates[v] = v;
  std::sort(candidates.begin(), candidates.end(), byDegree);
  std::vector<char> placed(n, 0);
  std::vector<std::size_t> component;
  std::size_t next = 0;
  std::size_t written = 0;
  while (written < n) {
    while (placed[candidates[next]]) ++next;
    std::size_t start = candidates[next];
    // Two refinement sweeps toward a pseudo-peripheral vertex.
    for (int sweep = 0; sweep < 2; ++sweep) {
      const std::size_t far = bfs(start, component);
      if (far == start) break;
      start = far;
    }
    bfs(start, component);
    for (const std::size_t v : component) {
      placed[v] = 1;
      perm_[written++] = v;
    }
  }
  // Reverse Cuthill-McKee: reversing the CM order keeps the bandwidth and
  // tends to reduce fill in the triangular factors.
  std::reverse(perm_.begin(), perm_.end());
  for (std::size_t v = 0; v < n; ++v) iperm_[perm_[v]] = v;
}

bool SparseLu::refactor(const SparseMatrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("SparseLu: matrix must be square");
  }
  valid_ = false;
  n_ = a.rows();
  // Fault site: tests force the singular-factorisation exit to exercise the
  // sparse backend's failure handling.
  if (faultinject::shouldFire("linsolve.sparse_lu")) return false;
  const auto& aRowPtr = a.rowPtr();
  const auto& aColIdx = a.colIdx();
  const auto& aValues = a.values();
  const std::size_t nnz = aValues.size();

  // Reuse the fill-reducing ordering across same-structure refactors (the
  // Newton loop re-stamps values into an unchanged pattern).
  if (structRowPtr_ != aRowPtr || structColIdx_ != aColIdx) {
    computeOrdering(a);
    structRowPtr_ = aRowPtr;
    structColIdx_ = aColIdx;
  }

  // CSC copy of the symmetrically permuted matrix B = P A P^T (count /
  // cumsum / scatter). Row indices within a column follow the input's row
  // sweep, which keeps the DFS below deterministic.
  cscPtr_.assign(n_ + 1, 0);
  for (std::size_t k = 0; k < nnz; ++k) ++cscPtr_[iperm_[aColIdx[k]] + 1];
  for (std::size_t c = 0; c < n_; ++c) cscPtr_[c + 1] += cscPtr_[c];
  cscIdx_.resize(nnz);
  cscVal_.resize(nnz);
  pstack_.assign(cscPtr_.begin(), cscPtr_.begin() + n_);  // scatter cursors
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t pr = iperm_[r];
    for (std::size_t k = aRowPtr[r]; k < aRowPtr[r + 1]; ++k) {
      const std::size_t slot = pstack_[iperm_[aColIdx[k]]]++;
      cscIdx_[slot] = pr;
      cscVal_[slot] = aValues[k];
    }
  }

  // Left-looking Gilbert-Peierls with partial pivoting: for each column k,
  // solve x = L \ A(:,k) (symbolic reach by DFS through the graph of L,
  // then a sparse numeric forward substitution), pick the largest
  // unpivoted |x| as the pivot, and append the column to L and U. All row
  // indices stay in original (unpermuted) space until the final remap.
  lPtr_.assign(n_ + 1, 0);
  uPtr_.assign(n_ + 1, 0);
  lIdx_.clear();
  lVal_.clear();
  uIdx_.clear();
  uVal_.clear();
  pinv_.assign(n_, kUnpivoted);
  x_.assign(n_, 0.0);
  found_.assign(n_, 0);
  stack_.resize(n_);
  pstack_.resize(n_);
  xi_.resize(n_);

  for (std::size_t k = 0; k < n_; ++k) {
    lPtr_[k] = lVal_.size();
    uPtr_[k] = uVal_.size();
    const std::size_t mark = k + 1;

    // Symbolic: the nonzero pattern of x is the set of nodes reachable from
    // pattern(A(:,k)) through edges j -> rows(L(:, pinv[j])). xi_[top..n)
    // ends up in an order where every node precedes the nodes it updates.
    std::size_t top = n_;
    for (std::size_t p = cscPtr_[k]; p < cscPtr_[k + 1]; ++p) {
      const std::size_t root = cscIdx_[p];
      if (found_[root] == mark) continue;
      std::size_t head = 0;
      stack_[0] = root;
      while (true) {
        const std::size_t i = stack_[head];
        const std::size_t j = pinv_[i];
        if (found_[i] != mark) {
          found_[i] = mark;
          pstack_[head] = j == kUnpivoted ? 0 : lPtr_[j] + 1;  // skip unit diag
        }
        bool descend = false;
        if (j != kUnpivoted) {
          for (std::size_t q = pstack_[head]; q < lPtr_[j + 1]; ++q) {
            const std::size_t child = lIdx_[q];
            if (found_[child] != mark) {
              pstack_[head] = q + 1;
              stack_[++head] = child;
              descend = true;
              break;
            }
          }
        }
        if (descend) continue;
        xi_[--top] = i;
        if (head == 0) break;
        --head;
      }
    }

    // Numeric: scatter A(:,k), then eliminate along the topological order.
    for (std::size_t px = top; px < n_; ++px) x_[xi_[px]] = 0.0;
    for (std::size_t p = cscPtr_[k]; p < cscPtr_[k + 1]; ++p) {
      x_[cscIdx_[p]] = cscVal_[p];
    }
    for (std::size_t px = top; px < n_; ++px) {
      const std::size_t i = xi_[px];
      const std::size_t j = pinv_[i];
      if (j == kUnpivoted) continue;
      const double xj = x_[i];
      if (xj == 0.0) continue;
      for (std::size_t q = lPtr_[j] + 1; q < lPtr_[j + 1]; ++q) {
        x_[lIdx_[q]] -= lVal_[q] * xj;
      }
    }

    // Partial pivot over the unpivoted pattern rows; already-pivoted rows
    // are finished U entries.
    std::size_t ipiv = kUnpivoted;
    double best = 0.0;
    for (std::size_t px = top; px < n_; ++px) {
      const std::size_t i = xi_[px];
      if (pinv_[i] != kUnpivoted) {
        uIdx_.push_back(pinv_[i]);
        uVal_.push_back(x_[i]);
        continue;
      }
      const double t = std::fabs(x_[i]);
      if (ipiv == kUnpivoted || t > best) {
        best = t;
        ipiv = i;
      }
    }
    if (ipiv == kUnpivoted || best < 1e-300) return false;  // singular
    const double pivot = x_[ipiv];
    uIdx_.push_back(k);  // pivot stored last in the U column
    uVal_.push_back(pivot);
    pinv_[ipiv] = k;
    lIdx_.push_back(ipiv);  // unit diagonal stored first in the L column
    lVal_.push_back(1.0);
    const double invPivot = 1.0 / pivot;
    for (std::size_t px = top; px < n_; ++px) {
      const std::size_t i = xi_[px];
      if (pinv_[i] == kUnpivoted) {
        lIdx_.push_back(i);
        lVal_.push_back(x_[i] * invPivot);
      }
      x_[i] = 0.0;
    }
  }
  lPtr_[n_] = lVal_.size();
  uPtr_[n_] = uVal_.size();
  // Remap L's row indices into pivot space for the triangular solves.
  for (auto& idx : lIdx_) idx = pinv_[idx];
  valid_ = true;
  return true;
}

void SparseLu::solveInPlace(Vector& b) const {
  assert(valid_);
  if (b.size() != n_) {
    throw std::invalid_argument("SparseLu::solveInPlace: size mismatch");
  }
  scratch_.resize(n_);
  // Map b into the fill-reducing ordering and through the pivot permutation
  // in one gather; the result is scattered back below.
  for (std::size_t i = 0; i < n_; ++i) scratch_[pinv_[i]] = b[perm_[i]];
  // Forward solve L y = P b (unit diagonal is the first entry per column).
  for (std::size_t j = 0; j < n_; ++j) {
    const double xj = scratch_[j];
    if (xj == 0.0) continue;
    for (std::size_t p = lPtr_[j] + 1; p < lPtr_[j + 1]; ++p) {
      scratch_[lIdx_[p]] -= lVal_[p] * xj;
    }
  }
  // Backward solve U x = y (pivot is the last entry per column).
  for (std::size_t jj = n_; jj-- > 0;) {
    const std::size_t diag = uPtr_[jj + 1] - 1;
    const double xj = scratch_[jj] / uVal_[diag];
    scratch_[jj] = xj;
    if (xj == 0.0) continue;
    for (std::size_t p = uPtr_[jj]; p < diag; ++p) {
      scratch_[uIdx_[p]] -= uVal_[p] * xj;
    }
  }
  for (std::size_t i = 0; i < n_; ++i) b[perm_[i]] = scratch_[i];
}

}  // namespace nh::util
