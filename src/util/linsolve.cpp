#include "util/linsolve.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/multigrid.hpp"

namespace nh::util {

CgWorkspace::CgWorkspace() = default;
CgWorkspace::~CgWorkspace() = default;
CgWorkspace::CgWorkspace(CgWorkspace&&) noexcept = default;
CgWorkspace& CgWorkspace::operator=(CgWorkspace&&) noexcept = default;

std::optional<LuFactorization> LuFactorization::factor(const Matrix& a) {
  LuFactorization f;
  if (!f.refactor(a)) return std::nullopt;
  return f;
}

bool LuFactorization::refactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  const std::size_t n = a.rows();
  valid_ = false;
  lu_ = a;  // reuses the existing allocation when the size is unchanged
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;  // numerically singular
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) * inv;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
  valid_ = true;
  return true;
}

Vector LuFactorization::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LuFactorization::solve: size mismatch");
  Vector x(n);
  // Apply permutation, then forward substitution (unit lower triangle).
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution (upper triangle).
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

void LuFactorization::solveInPlace(Vector& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuFactorization::solveInPlace: size mismatch");
  }
  scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch_[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = scratch_[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * scratch_[j];
    scratch_[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = scratch_[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * scratch_[j];
    scratch_[ii] = acc / lu_(ii, ii);
  }
  std::copy(scratch_.begin(), scratch_.end(), b.begin());
}

double LuFactorization::absDeterminant() const {
  double det = 1.0;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= std::fabs(lu_(i, i));
  return det;
}

Vector solveDense(const Matrix& a, const Vector& b) {
  auto f = LuFactorization::factor(a);
  if (!f) throw std::runtime_error("solveDense: singular matrix");
  return f->solve(b);
}

bool SchurComplementSolver::solve(const Vector& d1, const Vector& d2,
                                  const Matrix& g, const Vector& r, Vector& x) {
  const std::size_t n1 = d1.size();
  const std::size_t n2 = d2.size();
  if (g.rows() != n1 || g.cols() != n2 || r.size() != n1 + n2) {
    throw std::invalid_argument("SchurComplementSolver: shape mismatch");
  }
  if (schur_.rows() != n2 || schur_.cols() != n2) schur_.resize(n2, n2, 0.0);
  schur_.fill(0.0);
  rhs_.resize(n2);
  for (std::size_t c = 0; c < n2; ++c) rhs_[c] = r[n1 + c];

  // S = diag(d2) - G^T diag(d1)^-1 G, accumulated row-by-row of G so the
  // inner loops stream one cached row; S is symmetric, fill the upper
  // triangle and mirror.
  for (std::size_t i = 0; i < n1; ++i) {
    const double invD = 1.0 / d1[i];
    const double scaledRes = r[i] * invD;
    const double* row = g.data() + i * n2;
    for (std::size_t c1 = 0; c1 < n2; ++c1) {
      const double gScaled = row[c1] * invD;
      rhs_[c1] += row[c1] * scaledRes;
      double* s = schur_.data() + c1 * n2;
      for (std::size_t c2 = c1; c2 < n2; ++c2) s[c2] -= gScaled * row[c2];
    }
  }
  for (std::size_t c1 = 0; c1 < n2; ++c1) {
    schur_(c1, c1) += d2[c1];
    for (std::size_t c2 = 0; c2 < c1; ++c2) schur_(c1, c2) = schur_(c2, c1);
  }

  if (!lu_.refactor(schur_)) return false;
  lu_.solveInPlace(rhs_);  // now x2

  x.resize(n1 + n2);
  for (std::size_t i = 0; i < n1; ++i) {
    double acc = r[i];
    const double* row = g.data() + i * n2;
    for (std::size_t c = 0; c < n2; ++c) acc += row[c] * rhs_[c];
    x[i] = acc / d1[i];
  }
  for (std::size_t c = 0; c < n2; ++c) x[n1 + c] = rhs_[c];
  return true;
}

bool IncompleteCholesky::compute(const SparseMatrix& a) {
  valid_ = false;
  if (a.rows() != a.cols()) return false;
  n_ = a.rows();
  const auto& aRowPtr = a.rowPtr();
  const auto& aColIdx = a.colIdx();
  const auto& aValues = a.values();

  // Extract the lower-triangle structure (cols <= r, diagonal last in each
  // row since CSR rows are column-sorted). Buffers keep their allocation
  // across refactorisations of same-structure matrices.
  rowPtr_.resize(n_ + 1);
  rowPtr_[0] = 0;
  std::size_t nnz = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = aRowPtr[r]; k < aRowPtr[r + 1] && aColIdx[k] <= r; ++k) {
      ++nnz;
    }
    rowPtr_[r + 1] = nnz;
  }
  colIdx_.resize(nnz);
  val_.resize(nnz);
  for (std::size_t r = 0; r < n_; ++r) {
    std::size_t out = rowPtr_[r];
    for (std::size_t k = aRowPtr[r]; k < aRowPtr[r + 1] && aColIdx[k] <= r; ++k) {
      colIdx_[out] = aColIdx[k];
      val_[out] = aValues[k];
      ++out;
    }
    // IC(0) needs every diagonal entry present.
    if (rowPtr_[r + 1] == rowPtr_[r] || colIdx_[rowPtr_[r + 1] - 1] != r) {
      return false;
    }
  }

  // Up-looking factorisation restricted to the pattern of L:
  //   L(i,j) = (A(i,j) - sum_{p<j} L(i,p) L(j,p)) / L(j,j)     for j < i
  //   L(i,i) = sqrt(A(i,i) - sum_{p<i} L(i,p)^2)
  // The inner sums intersect two already-computed sparse rows (two-pointer
  // merge); with the ~7-entry stencil rows of the FV operators this is O(nnz).
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t rowBegin = rowPtr_[i];
    const std::size_t rowEnd = rowPtr_[i + 1];
    for (std::size_t idx = rowBegin; idx < rowEnd; ++idx) {
      const std::size_t j = colIdx_[idx];
      double s = val_[idx];
      const std::size_t jEnd = rowPtr_[j + 1] - 1;  // exclude L(j,j)
      std::size_t ka = rowBegin;
      std::size_t kb = rowPtr_[j];
      while (ka < idx && kb < jEnd) {
        const std::size_t ca = colIdx_[ka];
        const std::size_t cb = colIdx_[kb];
        if (ca == cb) {
          s -= val_[ka] * val_[kb];
          ++ka;
          ++kb;
        } else if (ca < cb) {
          ++ka;
        } else {
          ++kb;
        }
      }
      if (j < i) {
        val_[idx] = s / val_[jEnd];  // jEnd points at L(j,j)
      } else {
        if (!(s > 0.0) || !std::isfinite(s)) return false;  // not SPD
        val_[idx] = std::sqrt(s);
      }
    }
  }
  valid_ = true;
  return true;
}

void IncompleteCholesky::apply(const Vector& r, Vector& z) const {
  assert(valid_);
  assert(r.size() == n_);
  if (z.size() != n_) z.resize(n_);
  const double* val = val_.data();
  const std::size_t* col = colIdx_.data();
  // Forward solve L y = r (diagonal is the last entry of each row). The
  // gather is unrolled two-wide with independent accumulators -- the FV
  // stencil rows carry 3-4 strictly-lower entries, so wider unrolls only
  // add cleanup overhead.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t diag = rowPtr_[i + 1] - 1;
    std::size_t k = rowPtr_[i];
    double a0 = 0.0, a1 = 0.0;
    for (; k + 2 <= diag; k += 2) {
      a0 += val[k] * z[col[k]];
      a1 += val[k + 1] * z[col[k + 1]];
    }
    double acc = r[i] - (a0 + a1);
    for (; k < diag; ++k) acc -= val[k] * z[col[k]];
    z[i] = acc / val[diag];
  }
  // Backward solve L^T z = y, column-oriented over the rows of L (a scatter:
  // each row's updates hit distinct columns, so the pair is independent).
  for (std::size_t ii = n_; ii-- > 0;) {
    const std::size_t diag = rowPtr_[ii + 1] - 1;
    const double zi = z[ii] / val[diag];
    z[ii] = zi;
    std::size_t k = rowPtr_[ii];
    for (; k + 2 <= diag; k += 2) {
      z[col[k]] -= val[k] * zi;
      z[col[k + 1]] -= val[k + 1] * zi;
    }
    for (; k < diag; ++k) z[col[k]] -= val[k] * zi;
  }
}

IterativeResult solveConjugateGradient(const SparseMatrix& a, const Vector& b,
                                       Vector& x, const CgOptions& options,
                                       CgWorkspace* workspace) {
  const std::size_t n = b.size();
  assert(a.rows() == n && a.cols() == n);
  if (x.size() != n) x.assign(n, 0.0);

  CgWorkspace local;
  CgWorkspace& ws = workspace != nullptr ? *workspace : local;

  // Preconditioner ladder: Multigrid -> IC(0) -> Jacobi, each rung falling
  // back to the next when it is inapplicable or breaks down.
  bool useMg = options.preconditioner == CgPreconditioner::Multigrid;
  if (useMg) {
    if (!ws.mg_) ws.mg_ = std::make_unique<GeometricMultigrid>();
    if (options.reusePreconditioner && ws.mgFailed_) {
      useMg = false;  // same frozen matrix was already rejected once
    } else if (!(options.reusePreconditioner && ws.mg_->valid() &&
                 ws.mg_->fineMatrix() == &a)) {
      // The address check downgrades a reuse request on a *different*
      // matrix object to a rebuild: the hierarchy smooths through a pointer
      // to the fine matrix, unlike IC(0) which copies its factor.
      GeometricMultigrid::Options mgOptions;
      mgOptions.nx = options.gridNx;
      mgOptions.ny = options.gridNy;
      mgOptions.nz = options.gridNz;
      useMg = ws.mg_->compute(a, mgOptions);
      ws.mgFailed_ = !useMg;
    }
  }
  bool useIc =
      !useMg && options.preconditioner != CgPreconditioner::Jacobi;
  if (useIc) {
    if (options.reusePreconditioner && ws.icFailed_) {
      useIc = false;  // same frozen matrix already broke down once
    } else if (!(options.reusePreconditioner && ws.ic_.valid())) {
      useIc = ws.ic_.compute(a);  // breakdown -> Jacobi fallback
      ws.icFailed_ = !useIc;
    }
  }
  if (!useMg && !useIc) {
    // Jacobi preconditioner M^-1 = 1/diag(A).
    a.diagonalInto(ws.invDiag_);
    for (auto& d : ws.invDiag_) d = (std::fabs(d) > 1e-300) ? 1.0 / d : 1.0;
  }

  Vector& r = ws.r_;
  Vector& z = ws.z_;
  Vector& p = ws.p_;
  Vector& ap = ws.ap_;
  r.resize(n);
  z.resize(n);
  p.resize(n);
  ap.resize(n);

  a.multiplyInto(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  const double bNorm = norm2(b);
  if (bNorm == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0};
  }

  const auto applyPreconditioner = [&] {
    if (useMg) {
      ws.mg_->apply(r, z);
    } else if (useIc) {
      ws.ic_.apply(r, z);
    } else {
      for (std::size_t i = 0; i < n; ++i) z[i] = ws.invDiag_[i] * r[i];
    }
  };

  applyPreconditioner();
  std::copy(z.begin(), z.end(), p.begin());
  double rz = dot(r, z);

  IterativeResult result;
  for (std::size_t it = 0; it < options.maxIter; ++it) {
    a.multiplyInto(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD (or breakdown)
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double res = norm2(r) / bNorm;
    result.iterations = it + 1;
    result.residualNorm = res;
    if (res < options.relTol) {
      result.converged = true;
      return result;
    }
    applyPreconditioner();
    const double rzNew = dot(r, z);
    const double beta = rzNew / rz;
    rz = rzNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

IterativeResult solveConjugateGradient(const SparseMatrix& a, const Vector& b,
                                       Vector& x, double relTol,
                                       std::size_t maxIter) {
  CgOptions options;
  options.relTol = relTol;
  options.maxIter = maxIter;
  return solveConjugateGradient(a, b, x, options, nullptr);
}

IterativeResult solveBiCgStab(const SparseMatrix& a, const Vector& b, Vector& x,
                              double relTol, std::size_t maxIter) {
  const std::size_t n = b.size();
  assert(a.rows() == n && a.cols() == n);
  if (x.size() != n) x.assign(n, 0.0);

  Vector invDiag = a.diagonal();
  for (auto& d : invDiag) d = (std::fabs(d) > 1e-300) ? 1.0 / d : 1.0;

  Vector r(n), rHat(n), p(n, 0.0), v(n, 0.0), s(n), t(n), y(n), z(n);
  a.multiplyInto(x, v);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - v[i];
  rHat = r;
  const double bNorm = norm2(b);
  if (bNorm == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0};
  }

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  std::fill(v.begin(), v.end(), 0.0);

  IterativeResult result;
  for (std::size_t it = 0; it < maxIter; ++it) {
    const double rhoNew = dot(rHat, r);
    if (std::fabs(rhoNew) < 1e-300) break;
    const double beta = (rhoNew / rho) * (alpha / omega);
    rho = rhoNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    for (std::size_t i = 0; i < n; ++i) y[i] = invDiag[i] * p[i];
    a.multiplyInto(y, v);
    alpha = rho / dot(rHat, v);
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (norm2(s) / bNorm < relTol) {
      axpy(alpha, y, x);
      result.converged = true;
      result.iterations = it + 1;
      result.residualNorm = norm2(s) / bNorm;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = invDiag[i] * s[i];
    a.multiplyInto(z, t);
    const double tt = dot(t, t);
    if (tt < 1e-300) break;
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * y[i] + omega * z[i];
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];
    const double res = norm2(r) / bNorm;
    result.iterations = it + 1;
    result.residualNorm = res;
    if (res < relTol) {
      result.converged = true;
      return result;
    }
    if (std::fabs(omega) < 1e-300) break;
  }
  return result;
}

Vector solveTridiagonal(const Vector& lower, const Vector& diag,
                        const Vector& upper, const Vector& rhs) {
  const std::size_t n = diag.size();
  if (lower.size() != n - 1 || upper.size() != n - 1 || rhs.size() != n) {
    throw std::invalid_argument("solveTridiagonal: size mismatch");
  }
  Vector c(n - 1), d(n);
  c[0] = upper[0] / diag[0];
  d[0] = rhs[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double m = diag[i] - lower[i - 1] * (i - 1 < c.size() ? c[i - 1] : 0.0);
    if (i < n - 1) c[i] = upper[i] / m;
    d[i] = (rhs[i] - lower[i - 1] * d[i - 1]) / m;
  }
  Vector x(n);
  x[n - 1] = d[n - 1];
  for (std::size_t ii = n - 1; ii-- > 0;) x[ii] = d[ii] - c[ii] * x[ii + 1];
  return x;
}

}  // namespace nh::util
