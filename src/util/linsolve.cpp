#include "util/linsolve.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace nh::util {

std::optional<LuFactorization> LuFactorization::factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  const std::size_t n = a.rows();
  LuFactorization f;
  f.lu_ = a;
  f.perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) f.perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(f.lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(f.lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return std::nullopt;  // numerically singular
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(f.lu_(k, c), f.lu_(pivot, c));
      std::swap(f.perm_[k], f.perm_[pivot]);
    }
    const double inv = 1.0 / f.lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = f.lu_(r, k) * inv;
      f.lu_(r, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) f.lu_(r, c) -= m * f.lu_(k, c);
    }
  }
  return f;
}

Vector LuFactorization::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LuFactorization::solve: size mismatch");
  Vector x(n);
  // Apply permutation, then forward substitution (unit lower triangle).
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution (upper triangle).
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

double LuFactorization::absDeterminant() const {
  double det = 1.0;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= std::fabs(lu_(i, i));
  return det;
}

Vector solveDense(const Matrix& a, const Vector& b) {
  auto f = LuFactorization::factor(a);
  if (!f) throw std::runtime_error("solveDense: singular matrix");
  return f->solve(b);
}

IterativeResult solveConjugateGradient(const SparseMatrix& a, const Vector& b,
                                       Vector& x, double relTol,
                                       std::size_t maxIter) {
  const std::size_t n = b.size();
  assert(a.rows() == n && a.cols() == n);
  if (x.size() != n) x.assign(n, 0.0);

  // Jacobi preconditioner M^-1 = 1/diag(A).
  Vector invDiag = a.diagonal();
  for (auto& d : invDiag) d = (std::fabs(d) > 1e-300) ? 1.0 / d : 1.0;

  Vector r(n), z(n), p(n), ap(n);
  a.multiplyInto(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  const double bNorm = norm2(b);
  if (bNorm == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0};
  }

  for (std::size_t i = 0; i < n; ++i) z[i] = invDiag[i] * r[i];
  p = z;
  double rz = dot(r, z);

  IterativeResult result;
  for (std::size_t it = 0; it < maxIter; ++it) {
    a.multiplyInto(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD (or breakdown)
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double res = norm2(r) / bNorm;
    result.iterations = it + 1;
    result.residualNorm = res;
    if (res < relTol) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = invDiag[i] * r[i];
    const double rzNew = dot(r, z);
    const double beta = rzNew / rz;
    rz = rzNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

IterativeResult solveBiCgStab(const SparseMatrix& a, const Vector& b, Vector& x,
                              double relTol, std::size_t maxIter) {
  const std::size_t n = b.size();
  assert(a.rows() == n && a.cols() == n);
  if (x.size() != n) x.assign(n, 0.0);

  Vector invDiag = a.diagonal();
  for (auto& d : invDiag) d = (std::fabs(d) > 1e-300) ? 1.0 / d : 1.0;

  Vector r(n), rHat(n), p(n, 0.0), v(n, 0.0), s(n), t(n), y(n), z(n);
  a.multiplyInto(x, v);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - v[i];
  rHat = r;
  const double bNorm = norm2(b);
  if (bNorm == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0};
  }

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  std::fill(v.begin(), v.end(), 0.0);

  IterativeResult result;
  for (std::size_t it = 0; it < maxIter; ++it) {
    const double rhoNew = dot(rHat, r);
    if (std::fabs(rhoNew) < 1e-300) break;
    const double beta = (rhoNew / rho) * (alpha / omega);
    rho = rhoNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    for (std::size_t i = 0; i < n; ++i) y[i] = invDiag[i] * p[i];
    a.multiplyInto(y, v);
    alpha = rho / dot(rHat, v);
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (norm2(s) / bNorm < relTol) {
      axpy(alpha, y, x);
      result.converged = true;
      result.iterations = it + 1;
      result.residualNorm = norm2(s) / bNorm;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = invDiag[i] * s[i];
    a.multiplyInto(z, t);
    const double tt = dot(t, t);
    if (tt < 1e-300) break;
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * y[i] + omega * z[i];
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];
    const double res = norm2(r) / bNorm;
    result.iterations = it + 1;
    result.residualNorm = res;
    if (res < relTol) {
      result.converged = true;
      return result;
    }
    if (std::fabs(omega) < 1e-300) break;
  }
  return result;
}

Vector solveTridiagonal(const Vector& lower, const Vector& diag,
                        const Vector& upper, const Vector& rhs) {
  const std::size_t n = diag.size();
  if (lower.size() != n - 1 || upper.size() != n - 1 || rhs.size() != n) {
    throw std::invalid_argument("solveTridiagonal: size mismatch");
  }
  Vector c(n - 1), d(n);
  c[0] = upper[0] / diag[0];
  d[0] = rhs[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double m = diag[i] - lower[i - 1] * (i - 1 < c.size() ? c[i - 1] : 0.0);
    if (i < n - 1) c[i] = upper[i] / m;
    d[i] = (rhs[i] - lower[i - 1] * d[i - 1]) / m;
  }
  Vector x(n);
  x[n - 1] = d[n - 1];
  for (std::size_t ii = n - 1; ii-- > 0;) x[ii] = d[ii] - c[ii] * x[ii + 1];
  return x;
}

}  // namespace nh::util
