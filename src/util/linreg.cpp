#include "util/linreg.hpp"

#include <cmath>
#include <stdexcept>

namespace nh::util {

namespace {
void checkInputs(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("fitLinear: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("fitLinear: need >= 2 samples");
}

double mean(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}
}  // namespace

LinearFit fitLinear(const std::vector<double>& x, const std::vector<double>& y) {
  checkInputs(x, y);
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) throw std::invalid_argument("fitLinear: degenerate x values");

  LinearFit fit;
  fit.samples = x.size();
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy <= 0.0) {
    fit.rSquared = 1.0;  // y constant and perfectly predicted by the constant fit
  } else {
    double ssRes = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.intercept + fit.slope * x[i]);
      ssRes += e * e;
    }
    fit.rSquared = 1.0 - ssRes / syy;
  }
  return fit;
}

LinearFit fitProportional(const std::vector<double>& x,
                          const std::vector<double>& y) {
  checkInputs(x, y);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  if (sxx <= 0.0) throw std::invalid_argument("fitProportional: degenerate x");

  LinearFit fit;
  fit.samples = x.size();
  fit.slope = sxy / sxx;
  fit.intercept = 0.0;
  double ssRes = 0.0, ssTot = 0.0;
  const double my = mean(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - fit.slope * x[i];
    ssRes += e * e;
    ssTot += (y[i] - my) * (y[i] - my);
  }
  fit.rSquared = (ssTot > 0.0) ? 1.0 - ssRes / ssTot : 1.0;
  return fit;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  checkInputs(x, y);
  const double mx = mean(x), my = mean(y);
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace nh::util
