#include "util/stringutil.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace nh::util {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double parseDouble(std::string_view s, std::string_view context) {
  const std::string t = trim(s);
  try {
    std::size_t pos = 0;
    const double v = std::stod(t, &pos);
    if (pos != t.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("parseDouble: cannot parse '" + t + "'" +
                                (context.empty() ? "" : " (" + std::string(context) + ")"));
  }
}

long long parseInt(std::string_view s, std::string_view context) {
  const std::string t = trim(s);
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc() || ptr != t.data() + t.size()) {
    throw std::invalid_argument("parseInt: cannot parse '" + t + "'" +
                                (context.empty() ? "" : " (" + std::string(context) + ")"));
  }
  return v;
}

}  // namespace nh::util
