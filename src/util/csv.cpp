#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/stringutil.hpp"

namespace nh::util {

std::string formatDouble(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvTable::addRow(const std::vector<std::string>& row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvTable::addRow: width mismatch");
  }
  rows_.push_back(row);
}

void CsvTable::addRow(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(formatDouble(v));
  addRow(cells);
}

const std::string& CsvTable::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

double CsvTable::cellAsDouble(std::size_t row, std::size_t col) const {
  return parseDouble(cell(row, col), "csv cell");
}

double CsvTable::cellAsDouble(std::size_t row, const std::string& columnName) const {
  return cellAsDouble(row, columnIndex(columnName));
}

std::size_t CsvTable::columnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

std::vector<double> CsvTable::columnAsDouble(const std::string& name) const {
  const std::size_t col = columnIndex(name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) out.push_back(cellAsDouble(r, col));
  return out;
}

std::string CsvTable::toString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << header_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
  return os.str();
}

void CsvTable::save(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CsvTable::save: cannot open " + path.string());
  out << toString();
  if (!out) throw std::runtime_error("CsvTable::save: write failed for " + path.string());
}

CsvTable CsvTable::fromString(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  CsvTable table;
  bool haveHeader = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (trim(line).empty()) continue;
    auto cells = split(line, ',');
    for (auto& c : cells) c = trim(c);
    if (!haveHeader) {
      table.header_ = std::move(cells);
      haveHeader = true;
    } else {
      if (cells.size() != table.header_.size()) {
        throw std::runtime_error("CsvTable::fromString: ragged row '" + line + "'");
      }
      table.rows_.push_back(std::move(cells));
    }
  }
  if (!haveHeader) throw std::runtime_error("CsvTable::fromString: empty input");
  return table;
}

CsvTable CsvTable::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("CsvTable::load: cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return fromString(buf.str());
}

}  // namespace nh::util
