#pragma once
/// \file annotations.hpp
/// Clang thread-safety annotations plus the thin annotated mutex wrappers the
/// rest of the codebase locks with.
///
/// Every piece of shared mutable state in the solver/engine stack declares
/// which mutex guards it (`NH_GUARDED_BY`), every lock-holding helper declares
/// the lock it needs (`NH_REQUIRES`), and Clang's `-Wthread-safety` analysis
/// (promoted to an error by `-Werror=thread-safety-analysis`, see the root
/// CMakeLists) rejects any access that does not provably hold the right lock
/// -- at compile time, before TSan ever has to catch the race at run time.
/// This is exactly the bug class of the PR 7 checkpoint-writer race (a worker
/// move-assigning a result row while the writer serialized it): with the row
/// store guarded, that code would not have compiled.
///
/// On GCC/MSVC the attributes expand to nothing; the wrappers still compile
/// and behave identically, so nothing about the build depends on Clang being
/// present. The std lock types (`std::lock_guard`, `std::unique_lock`) are
/// invisible to the analysis under libstdc++, which is why annotated code
/// locks through `util::Mutex`/`util::MutexLock`/`util::CondVar` below
/// instead.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NH_THREAD_ANNOTATION
#define NH_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define NH_CAPABILITY(x) NH_THREAD_ANNOTATION(capability(x))

/// Marks a RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define NH_SCOPED_CAPABILITY NH_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a field/variable may only be accessed while holding \p x.
#define NH_GUARDED_BY(x) NH_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the *pointee* of a pointer field may only be accessed while
/// holding \p x (the pointer itself is unguarded).
#define NH_PT_GUARDED_BY(x) NH_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that callers must hold the given capabilities to call this
/// function (the machine-checked replacement for "caller holds lock"
/// comments).
#define NH_REQUIRES(...) \
  NH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past its return.
#define NH_ACQUIRE(...) NH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define NH_RELEASE(...) NH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns \p ret.
#define NH_TRY_ACQUIRE(...) \
  NH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Callers must NOT hold the given capabilities (deadlock documentation for
/// public entry points that lock internally).
#define NH_EXCLUDES(...) NH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define NH_RETURN_CAPABILITY(x) NH_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: function body is exempt from the analysis. Must not appear
/// in first-party code without a comment proving why the access is safe.
#define NH_NO_THREAD_SAFETY_ANALYSIS \
  NH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace nh::util {

/// `std::mutex` with the capability attributes the analysis needs. Lock it
/// through MutexLock (scoped) in almost all code; the raw lock()/unlock()
/// exist for the condition-variable protocol and deliberately manual
/// hand-over-hand patterns.
class NH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NH_ACQUIRE() { inner_.lock(); }
  void unlock() NH_RELEASE() { inner_.unlock(); }
  bool tryLock() NH_TRY_ACQUIRE(true) { return inner_.try_lock(); }

 private:
  std::mutex inner_;
};

/// Scoped lock over util::Mutex -- the annotated replacement for
/// `std::lock_guard<std::mutex>`. The analysis treats construction as
/// acquiring the mutex and destruction as releasing it.
class NH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) NH_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() NH_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with util::Mutex. wait() atomically releases
/// and reacquires \p mutex internally (through the std machinery, invisible
/// to the analysis), so from the analysis's point of view the mutex stays
/// held across the call -- which is precisely the contract: the caller locks
/// once, loops on its guarded predicate, and waits with the lock logically
/// held. Write the predicate loop inline (`while (!pred) cv.wait(mu);`), not
/// as a lambda: inline reads of guarded fields are checked, lambda bodies
/// invoked from inside the std wait would not be.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Caller must hold \p mutex (it is released while
  /// blocked and reacquired before returning).
  void wait(Mutex& mutex) NH_REQUIRES(mutex) { inner_.wait(mutex); }

  void notifyOne() { inner_.notify_one(); }
  void notifyAll() { inner_.notify_all(); }

 private:
  // condition_variable_any works with any BasicLockable, i.e. util::Mutex
  // directly; its internal unlock/relock happens in a system header, outside
  // the analysis.
  std::condition_variable_any inner_;
};

}  // namespace nh::util
