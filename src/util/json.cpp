#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/csv.hpp"

namespace nh::util {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // formatDouble round-trips (precision 17); its output ("1e-08", "42") is
  // already valid JSON number syntax.
  return formatDouble(v);
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  push(Scope::Object, '{');
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  pop(Scope::Object, '}');
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  push(Scope::Array, '[');
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  pop(Scope::Array, ']');
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Scope::Object || keyPending_) {
    throw std::logic_error("JsonWriter::key outside an object");
  }
  if (hasItems_.back()) out_ += ',';
  hasItems_.back() = true;
  out_ += '"';
  out_ += jsonEscape(name);
  out_ += "\":";
  keyPending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  out_ += '"';
  out_ += jsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  out_ += jsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  beforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t v) {
  beforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter::str with open containers");
  }
  return out_;
}

void JsonWriter::beforeValue() {
  if (keyPending_) {
    keyPending_ = false;
    return;
  }
  if (stack_.empty()) {
    if (!out_.empty()) {
      throw std::logic_error("JsonWriter: multiple top-level values");
    }
    return;
  }
  if (stack_.back() == Scope::Object) {
    throw std::logic_error("JsonWriter: object value without a key");
  }
  if (hasItems_.back()) out_ += ',';
  hasItems_.back() = true;
}

void JsonWriter::push(Scope scope, char open) {
  out_ += open;
  stack_.push_back(scope);
  hasItems_.push_back(false);
}

void JsonWriter::pop(Scope scope, char close) {
  if (stack_.empty() || stack_.back() != scope || keyPending_) {
    throw std::logic_error("JsonWriter: mismatched container end");
  }
  out_ += close;
  stack_.pop_back();
  hasItems_.pop_back();
}

}  // namespace nh::util
