#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/csv.hpp"

namespace nh::util {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // formatDouble round-trips (precision 17); its output ("1e-08", "42") is
  // already valid JSON number syntax.
  return formatDouble(v);
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  push(Scope::Object, '{');
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  pop(Scope::Object, '}');
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  push(Scope::Array, '[');
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  pop(Scope::Array, ']');
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Scope::Object || keyPending_) {
    throw std::logic_error("JsonWriter::key outside an object");
  }
  if (hasItems_.back()) out_ += ',';
  hasItems_.back() = true;
  out_ += '"';
  out_ += jsonEscape(name);
  out_ += "\":";
  keyPending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  out_ += '"';
  out_ += jsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  out_ += jsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  beforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t v) {
  beforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter::str with open containers");
  }
  return out_;
}

void JsonWriter::beforeValue() {
  if (keyPending_) {
    keyPending_ = false;
    return;
  }
  if (stack_.empty()) {
    if (!out_.empty()) {
      throw std::logic_error("JsonWriter: multiple top-level values");
    }
    return;
  }
  if (stack_.back() == Scope::Object) {
    throw std::logic_error("JsonWriter: object value without a key");
  }
  if (hasItems_.back()) out_ += ',';
  hasItems_.back() = true;
}

void JsonWriter::push(Scope scope, char open) {
  out_ += open;
  stack_.push_back(scope);
  hasItems_.push_back(false);
}

void JsonWriter::pop(Scope scope, char close) {
  if (stack_.empty() || stack_.back() != scope || keyPending_) {
    throw std::logic_error("JsonWriter: mismatched container end");
  }
  out_ += close;
  stack_.pop_back();
  hasItems_.pop_back();
}

// ---- reader ----------------------------------------------------------------

bool JsonValue::asBool() const {
  if (type_ != Type::Bool) throw std::runtime_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::asNumber() const {
  if (type_ != Type::Number) {
    throw std::runtime_error("JsonValue: not a number");
  }
  return number_;
}

const std::string& JsonValue::asString() const {
  if (type_ != Type::String) {
    throw std::runtime_error("JsonValue: not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::Array) throw std::runtime_error("JsonValue: not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (type_ != Type::Object) {
    throw std::runtime_error("JsonValue: not an object");
  }
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (const JsonValue* value = find(key)) return *value;
  throw std::runtime_error("JsonValue: missing key '" + key + "'");
}

std::size_t JsonValue::size() const {
  if (type_ == Type::Array) return items_.size();
  if (type_ == Type::Object) return members_.size();
  return 0;
}

/// Strict recursive-descent parser over the input string.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parseValue(0);
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  /// Appends the UTF-8 encoding of \p codepoint to \p out.
  void appendUtf8(unsigned long codepoint, std::string& out) {
    if (codepoint < 0x80) {
      out += static_cast<char>(codepoint);
    } else if (codepoint < 0x800) {
      out += static_cast<char>(0xc0 | (codepoint >> 6));
      out += static_cast<char>(0x80 | (codepoint & 0x3f));
    } else if (codepoint < 0x10000) {
      out += static_cast<char>(0xe0 | (codepoint >> 12));
      out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (codepoint & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (codepoint >> 18));
      out += static_cast<char>(0x80 | ((codepoint >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (codepoint & 0x3f));
    }
  }

  unsigned long parseHex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned long value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned long>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned long>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned long>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return value;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned long codepoint = parseHex4();
          if (codepoint >= 0xd800 && codepoint <= 0xdbff) {
            // Surrogate pair: a second \uXXXX must follow.
            if (!consumeLiteral("\\u")) fail("lone high surrogate");
            const unsigned long low = parseHex4();
            if (low < 0xdc00 || low > 0xdfff) fail("bad low surrogate");
            codepoint = 0x10000 + ((codepoint - 0xd800) << 10) + (low - 0xdc00);
          } else if (codepoint >= 0xdc00 && codepoint <= 0xdfff) {
            fail("lone low surrogate");
          }
          appendUtf8(codepoint, out);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue value;
    value.type_ = JsonValue::Type::Number;
    value.number_ = number;
    return value;
  }

  JsonValue parseValue(int depth) {
    if (depth > 128) fail("nesting too deep");
    skipWhitespace();
    const char c = peek();
    JsonValue value;
    if (c == '{') {
      ++pos_;
      value.type_ = JsonValue::Type::Object;
      skipWhitespace();
      if (peek() == '}') {
        ++pos_;
        return value;
      }
      while (true) {
        skipWhitespace();
        std::string key = parseString();
        skipWhitespace();
        expect(':');
        JsonValue member = parseValue(depth + 1);
        if (!value.find(key)) {
          value.members_.emplace_back(std::move(key), std::move(member));
        }
        skipWhitespace();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return value;
      }
    }
    if (c == '[') {
      ++pos_;
      value.type_ = JsonValue::Type::Array;
      skipWhitespace();
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      while (true) {
        value.items_.push_back(parseValue(depth + 1));
        skipWhitespace();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return value;
      }
    }
    if (c == '"') {
      value.type_ = JsonValue::Type::String;
      value.string_ = parseString();
      return value;
    }
    if (consumeLiteral("null")) return value;
    if (consumeLiteral("true")) {
      value.type_ = JsonValue::Type::Bool;
      value.bool_ = true;
      return value;
    }
    if (consumeLiteral("false")) {
      value.type_ = JsonValue::Type::Bool;
      value.bool_ = false;
      return value;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parseNumber();
    fail("unexpected character");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).run();
}

}  // namespace nh::util
