#pragma once
/// \file rng.hpp
/// Deterministic xoshiro256** PRNG. Used by the variability extension of the
/// JART model, by property-based tests, and by the security-scenario
/// examples. Seeded explicitly everywhere so runs are reproducible.

#include <cmath>
#include <cstdint>

namespace nh::util {

/// xoshiro256** (Blackman & Vigna). Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Reset state from a single seed via SplitMix64 expansion.
  void reseed(std::uint64_t seed);

  /// Counter-based stream plan for parallel Monte-Carlo: the generator for
  /// stream i of a campaign seeded with `seed` depends only on (seed, i),
  /// never on which thread draws from it or in what order streams are
  /// created. The pair is collapsed through a SplitMix64-style finalizer so
  /// that adjacent stream indices land on uncorrelated xoshiro256** states.
  /// This is the contract campaign reproducibility rests on: do not change
  /// the mixing constants without re-recording every campaign baseline.
  static Rng forStream(std::uint64_t seed, std::uint64_t stream);

  /// Next raw 64-bit value.
  std::uint64_t nextU64();
  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n) — n must be > 0.
  std::uint64_t uniformInt(std::uint64_t n);
  /// Standard normal via Box-Muller (deterministic pairing).
  double normal();
  /// Normal with given mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }
  /// Bernoulli trial.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t splitMix64(std::uint64_t& state);
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
  bool haveSpare_ = false;
  double spare_ = 0.0;
};

inline void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitMix64(sm);
  haveSpare_ = false;
}

inline Rng Rng::forStream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream counter into the seed with one SplitMix64 finalizer pass
  // over each word, cross-feeding so (seed, stream) and (seed + 1, stream - 1)
  // do not collide. The result seeds the normal reseed() expansion.
  std::uint64_t a = seed + 0x9e3779b97f4a7c15ULL;
  std::uint64_t b = stream + 0xbf58476d1ce4e5b9ULL;
  a = (a ^ (a >> 30)) * 0xbf58476d1ce4e5b9ULL;
  b = (b ^ (b >> 30)) * 0x94d049bb133111ebULL;
  std::uint64_t z = (a ^ (b >> 27)) + (b ^ (a >> 27));
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

inline std::uint64_t Rng::splitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t Rng::nextU64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

inline double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

inline double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

inline std::uint64_t Rng::uniformInt(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v;
  do {
    v = nextU64();
  } while (v >= limit);
  return v % n;
}

inline double Rng::normal() {
  if (haveSpare_) {
    haveSpare_ = false;
    return spare_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double twoPiU2 = 2.0 * 3.14159265358979323846 * u2;
  spare_ = mag * std::sin(twoPiU2);
  haveSpare_ = true;
  return mag * std::cos(twoPiU2);
}

}  // namespace nh::util
