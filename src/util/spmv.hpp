#pragma once
/// \file spmv.hpp
/// CSR sparse matrix-vector row kernels: a portable scalar reference and a
/// runtime-dispatched SIMD implementation that must match it bit-for-bit.
///
/// The arithmetic *specification* lives in rowRangeReference:
///  * narrow rows (< kWideRowMinEntries entries) use the 4-accumulator
///    stride-4 pattern the solver stack has always used (lane i accumulates
///    entries k, k+4, k+8, ...; lanes reduce as (a0+a1)+(a2+a3); remaining
///    entries fold into the reduced sum one by one) -- bit-identical to the
///    pre-SIMD kernel, which keeps the tracked experiment baselines intact,
///  * wide rows (>= kWideRowMinEntries, i.e. the dense-ish 27-point Galerkin
///    coarse rows and the full-weighting restriction rows) are routed
///    through a register-blocked 8-accumulator path (two 4-lane blocks per
///    step, reduced as ((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))).
///
/// The SIMD kernels implement the *same* sequence of IEEE mul/add operations
/// with vector lanes standing in for the scalar accumulators -- deliberately
/// no FMA, because contraction would round differently per target and break
/// both the exact-agreement tests and result reproducibility across
/// machines. activeKernel() therefore returns bit-identical results on every
/// host, SIMD or not.

#include <cstddef>

namespace nh::util::spmv {

/// Row width at/above which a row takes the register-blocked 8-accumulator
/// path. 16 keeps every FV stencil row (7-point fine operators, <= 8-entry
/// trilinear prolongation rows) on the baseline-compatible 4-wide pattern
/// while catching the 27-point Galerkin coarse rows and the restriction rows.
constexpr std::size_t kWideRowMinEntries = 16;

/// Kernel contract: for every row r in [begin, end), y[r] = sum_k val[k] *
/// x[colIdx[k]] over the row's CSR range, accumulated in the exact blocked
/// order defined by rowRangeReference. Rows outside [begin, end) are not
/// touched, so disjoint ranges may run on different threads.
using RowRangeFn = void (*)(const std::size_t* rowPtr,
                            const std::size_t* colIdx, const double* val,
                            const double* x, double* y, std::size_t begin,
                            std::size_t end);

/// Portable scalar reference -- the arithmetic specification above.
void rowRangeReference(const std::size_t* rowPtr, const std::size_t* colIdx,
                       const double* val, const double* x, double* y,
                       std::size_t begin, std::size_t end);

/// Best kernel for this process, resolved once: the AVX2 gather kernel when
/// it was compiled in and the CPU supports it, otherwise the scalar
/// reference. NH_SPMV=scalar forces the reference (kernel A/B benchmarks and
/// debugging). Always bit-identical to rowRangeReference.
RowRangeFn activeKernel();

/// "avx2" or "scalar" -- recorded in the perf-bench context.
const char* activeKernelName();

}  // namespace nh::util::spmv
