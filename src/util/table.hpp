#pragma once
/// \file table.hpp
/// ASCII table printer for the benchmark harnesses: each figure bench prints
/// the same rows/series the paper reports, in an aligned monospace table.

#include <string>
#include <vector>

namespace nh::util {

/// Column-aligned ASCII table with a title, header and footer rule.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void setTitle(std::string title) { title_ = std::move(title); }
  /// Append a pre-formatted row (width must match the header).
  void addRow(std::vector<std::string> row);
  /// Free-form footnote lines rendered under the table.
  void addNote(std::string note);

  /// Render to a string.
  std::string render() const;
  /// Render to stdout.
  void print() const;

  /// Format helpers used by the benches.
  static std::string fixed(double v, int decimals);
  static std::string scientific(double v, int decimals);
  /// Engineering formatting with SI suffix (1.2e-9 s -> "1.2 ns").
  static std::string si(double v, const std::string& unit, int decimals = 2);
  /// Integer with thousands separators ("12,345").
  static std::string grouped(long long v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace nh::util
