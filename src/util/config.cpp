#include "util/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/stringutil.hpp"

namespace nh::util {

Config Config::fromString(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments (full-line or trailing).
    const auto hash = line.find_first_of("#;");
    if (hash != std::string::npos) line.erase(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;
    if (t.front() == '[') {
      if (t.back() != ']') {
        throw std::runtime_error("Config: malformed section at line " + std::to_string(lineNo));
      }
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: expected key=value at line " + std::to_string(lineNo));
    }
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key at line " + std::to_string(lineNo));
    }
    cfg.values_[section.empty() ? key : section + "." + key] = value;
  }
  return cfg;
}

Config Config::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config::load: cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return fromString(buf.str());
}

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::optional<std::string> Config::getString(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::getString(const std::string& key, const std::string& fallback) const {
  return getString(key).value_or(fallback);
}

double Config::getDouble(const std::string& key, double fallback) const {
  const auto v = getString(key);
  return v ? parseDouble(*v, key) : fallback;
}

long long Config::getInt(const std::string& key, long long fallback) const {
  const auto v = getString(key);
  return v ? parseInt(*v, key) : fallback;
}

bool Config::getBool(const std::string& key, bool fallback) const {
  const auto v = getString(key);
  if (!v) return fallback;
  const std::string s = toLower(trim(*v));
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw std::invalid_argument("Config: cannot parse bool '" + *v + "' for key " + key);
}

double Config::requireDouble(const std::string& key) const {
  const auto v = getString(key);
  if (!v) throw std::out_of_range("Config: missing required key '" + key + "'");
  return parseDouble(*v, key);
}

long long Config::requireInt(const std::string& key) const {
  const auto v = getString(key);
  if (!v) throw std::out_of_range("Config: missing required key '" + key + "'");
  return parseInt(*v, key);
}

std::string Config::requireString(const std::string& key) const {
  const auto v = getString(key);
  if (!v) throw std::out_of_range("Config: missing required key '" + key + "'");
  return *v;
}

std::vector<double> Config::getDoubleList(const std::string& key) const {
  const auto v = getString(key);
  std::vector<double> out;
  if (!v) return out;
  for (const auto& part : split(*v, ',')) {
    const std::string t = trim(part);
    if (!t.empty()) out.push_back(parseDouble(t, key));
  }
  return out;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::string Config::toString() const {
  // Emit global (section-less) keys first so they are not swallowed by a
  // section header on re-parse, then each section grouped together.
  std::ostringstream os;
  for (const auto& [k, v] : values_) {
    if (k.find('.') == std::string::npos) os << k << " = " << v << "\n";
  }
  std::string currentSection;
  for (const auto& [k, v] : values_) {
    const auto dotPos = k.find('.');
    if (dotPos == std::string::npos) continue;
    const std::string section = k.substr(0, dotPos);
    if (section != currentSection) {
      os << "[" << section << "]\n";
      currentSection = section;
    }
    os << k.substr(dotPos + 1) << " = " << v << "\n";
  }
  return os.str();
}

}  // namespace nh::util
