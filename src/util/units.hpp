#pragma once
/// \file units.hpp
/// Physical constants (SI, CODATA 2018 exact values where defined) and unit
/// helpers used throughout the NeuroHammer simulation stack.

namespace nh::util {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// Boltzmann constant expressed in eV/K (k_B / e).
inline constexpr double kBoltzmannEv = kBoltzmann / kElementaryCharge;
/// Free-space Richardson constant [A m^-2 K^-2].
inline constexpr double kRichardson = 1.20173e6;
/// Stefan-Boltzmann constant [W m^-2 K^-4].
inline constexpr double kStefanBoltzmann = 5.670374419e-8;
/// Lorenz number of the Wiedemann-Franz law [W Ohm K^-2].
inline constexpr double kLorenzNumber = 2.44e-8;
/// Standard ambient temperature used as the default T0 [K].
inline constexpr double kRoomTemperature = 300.0;
/// Absolute zero in Celsius offset [K].
inline constexpr double kCelsiusOffset = 273.15;
/// Pi, spelled out so we do not depend on <numbers> in every header.
inline constexpr double kPi = 3.14159265358979323846;

// ---- unit multipliers (value * unit -> SI) --------------------------------

inline constexpr double kNano = 1e-9;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

/// Convert nanometres to metres.
constexpr double nm(double v) { return v * kNano; }
/// Convert nanoseconds to seconds.
constexpr double ns(double v) { return v * kNano; }
/// Convert microseconds to seconds.
constexpr double us(double v) { return v * kMicro; }
/// Convert milliwatts to watts.
constexpr double mW(double v) { return v * kMilli; }
/// Convert electron-volts to joules.
constexpr double eV(double v) { return v * kElementaryCharge; }
/// Convert degrees Celsius to kelvin.
constexpr double celsius(double v) { return v + kCelsiusOffset; }

/// Thermal voltage k_B*T/e [V] at temperature \p temperatureK.
constexpr double thermalVoltage(double temperatureK) {
  return kBoltzmannEv * temperatureK;
}

}  // namespace nh::util
