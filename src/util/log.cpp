#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/annotations.hpp"

namespace nh::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
// Serialises whole lines onto std::cerr so concurrent sweep workers never
// interleave characters. The guarded state is the stream itself (a global we
// cannot annotate), so the mutex carries the protocol by convention: every
// write to std::cerr in this file goes through logMessage.
Mutex g_mutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logMessage(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::cerr << "[nh:" << levelName(level) << "] " << message << '\n';
}

}  // namespace nh::util
