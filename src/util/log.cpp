#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace nh::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logMessage(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[nh:" << levelName(level) << "] " << message << '\n';
}

}  // namespace nh::util
