#include "util/matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace nh::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::fill(double value) {
  for (auto& x : data_) x = value;
}

void Matrix::resize(std::size_t rows, std::size_t cols, double value) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, value);
}

Vector Matrix::multiply(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("Matrix::multiply: size mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

double Matrix::maxAbs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double norm2(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double normInf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector subtract(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector scale(double alpha, const Vector& v) {
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = alpha * v[i];
  return out;
}

}  // namespace nh::util
