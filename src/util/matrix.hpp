#pragma once
/// \file matrix.hpp
/// Small dense linear-algebra types used by the circuit (MNA) and regression
/// code paths. Row-major storage; sizes in this project are tiny (tens of
/// unknowns), so clarity is preferred over blocking/vectorisation tricks.

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace nh::util {

/// Dense column vector of doubles.
using Vector = std::vector<double>;

/// Row-major dense matrix with bounds-checked element access in debug builds.
class Matrix {
 public:
  Matrix() = default;
  /// Create a \p rows x \p cols matrix filled with \p fill.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Create from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Direct access to the row-major backing store.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Reset every element to \p value.
  void fill(double value);
  /// Resize (destructive) and fill with \p value.
  void resize(std::size_t rows, std::size_t cols, double value = 0.0);

  /// Matrix-vector product y = A*x. Requires x.size() == cols().
  Vector multiply(const Vector& x) const;
  /// Matrix-matrix product (this * other).
  Matrix multiply(const Matrix& other) const;
  /// Transposed copy.
  Matrix transposed() const;
  /// Identity matrix of dimension \p n.
  static Matrix identity(std::size_t n);

  /// Max-absolute-element norm.
  double maxAbs() const;

  // C++20 required: a `= default`ed equality operator for a class with
  // members only became valid with P1185 (C++20); under C++17 this line is
  // ill-formed and the whole library fails to compile. The standard level is
  // pinned in exactly one place -- target_compile_features(nh ... cxx_std_20)
  // in the root CMakeLists.txt -- do not lower it.
  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- free vector helpers ---------------------------------------------------

/// Euclidean norm of \p v.
double norm2(const Vector& v);
/// Max-absolute norm of \p v.
double normInf(const Vector& v);
/// Dot product (sizes must match).
double dot(const Vector& a, const Vector& b);
/// y += alpha * x (sizes must match).
void axpy(double alpha, const Vector& x, Vector& y);
/// Element-wise a - b.
Vector subtract(const Vector& a, const Vector& b);
/// Element-wise a + b.
Vector add(const Vector& a, const Vector& b);
/// alpha * v.
Vector scale(double alpha, const Vector& v);

}  // namespace nh::util
