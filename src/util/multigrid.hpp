#pragma once
/// \file multigrid.hpp
/// Geometric multigrid (GMG) V-cycle preconditioner for the SPD operators
/// the finite-volume PDE solvers assemble on structured nx x ny x nz voxel
/// grids (7-point stencils and their Galerkin coarsenings).
///
/// Why: IC(0) halves the CG iteration count but the count still grows with
/// grid resolution (~O(nx) for the steady heat operator), so the 10^5-10^6
/// voxel grids hit a scaling wall. One GMG V-cycle per CG iteration keeps
/// the iteration count (near) grid-size independent.
///
/// Construction per level, coarsest last:
///  * cell-centred coarsening by 2 in each dimension (odd tails clamp),
///  * trilinear prolongation P, full-weighting restriction R = P^T,
///  * Galerkin coarse operator A_c = R A P (keeps SPD symmetry exactly),
///  * symmetric smoothing: forward Gauss-Seidel sweeps before the coarse
///    correction, backward sweeps after -- the adjoint pairing that makes
///    the V-cycle a symmetric preconditioner, as CG requires,
///  * a dense LU solve at the coarsest level.
///
/// compute() returns false when the grid cannot be coarsened (dimensions
/// that do not match the matrix, pinned/eliminated systems, or grids small
/// enough that IC(0) is already cheap); callers fall back to IC(0)/Jacobi.

#include <cstddef>
#include <vector>

#include "util/linsolve.hpp"
#include "util/matrix.hpp"
#include "util/sparse.hpp"

namespace nh::util {

class GeometricMultigrid {
 public:
  struct Options {
    /// Structured-grid dimensions; their product must equal the matrix size.
    std::size_t nx = 0, ny = 0, nz = 0;
    /// Forward Gauss-Seidel sweeps before the coarse correction.
    std::size_t preSmooth = 1;
    /// Backward sweeps after it (keep equal to preSmooth for symmetry).
    std::size_t postSmooth = 1;
    /// Coarsen until at most this many rows remain, then solve densely.
    /// Doubles as the applicability floor: systems no larger than this are
    /// rejected by compute() -- IC(0) already handles them well.
    std::size_t maxCoarseRows = 64;
    /// Gauss-Seidel flavour (see MultigridSmoother in linsolve.hpp). The
    /// default Lexicographic keeps the recorded experiment baselines
    /// bit-identical; RedBlack trades smoothing order for per-color
    /// parallelism and a division-free inner loop.
    MultigridSmoother smoother = MultigridSmoother::Lexicographic;
  };

  /// Build (or rebuild) the hierarchy for \p a. The transfer operators are
  /// reused when the grid dimensions are unchanged from the previous call,
  /// so sweeps re-solving on one grid only redo the Galerkin products.
  /// Keeps a pointer to \p a: the matrix must outlive apply() calls (its
  /// values must not change between compute() and apply()).
  /// Returns false -- leaving valid() false -- when the grid is unknown,
  /// mismatched, or too small to coarsen.
  bool compute(const SparseMatrix& a, const Options& options);
  bool valid() const { return valid_; }
  /// The fine operator the hierarchy was built for (nullptr before
  /// compute()); reuse paths check it to avoid smoothing with a stale
  /// pointer when the caller switched matrix objects.
  const SparseMatrix* fineMatrix() const { return fine_; }

  /// z = M^{-1} r: one V-cycle from a zero initial guess. Requires valid().
  void apply(const Vector& r, Vector& z) const;

  /// Hierarchy depth including the fine level (0 when not valid()).
  std::size_t levelCount() const { return valid_ ? levels_.size() + 1 : 0; }

 private:
  /// Coarse level l+1 plus its coupling to level l (level 0 = the fine
  /// matrix, held by pointer).
  struct Level {
    std::size_t nx = 0, ny = 0, nz = 0;  ///< This coarse level's dims.
    SparseMatrix prolong;                ///< maps this level -> finer level.
    SparseMatrix restrict_;              ///< prolong transposed.
    SparseMatrix ap;                     ///< Cached A_l P_l intermediate.
    SparseMatrix coarseA;                ///< Galerkin operator here.
    /// Symbolic-once plans for the Galerkin chain A_{l+1} = R (A_l P):
    /// same-structure recomputes (frozen-hierarchy sweeps, transient loops)
    /// refill ap/coarseA in O(nnz) instead of re-running SpGEMM with fresh
    /// allocations.
    SpGemmPlan apPlan, rapPlan;
    mutable Vector b, x, scratch;        ///< V-cycle storage for this level.
  };

  /// Per-smoothed-level data for the RedBlack smoother, rebuilt on every
  /// compute(): a greedy multicoloring of the operator's adjacency (valid
  /// for the structurally symmetric SPD operators GMG accepts) plus the
  /// cached inverse diagonal the division-free sweeps multiply by.
  struct SmootherData {
    Vector invDiag;
    /// Rows of color c are colorOrder[colorPtr[c] .. colorPtr[c + 1]),
    /// ascending within each color.
    std::vector<std::size_t> colorPtr;
    std::vector<std::size_t> colorOrder;
  };

  void cycle(std::size_t l, const Vector& b, Vector& x) const;

  const SparseMatrix* fine_ = nullptr;
  Options options_;
  std::vector<Level> levels_;
  /// smoothers_[l] colors the level-l operator (0 = fine). Sized
  /// levels_.size() when options_.smoother == RedBlack, empty otherwise
  /// (the coarsest operator is LU-solved, never smoothed).
  std::vector<SmootherData> smoothers_;
  Matrix coarseDense_;
  LuFactorization coarseLu_;
  mutable Vector fineScratch_;
  bool valid_ = false;
};

/// Cell-centred trilinear prolongation from an (ncx, ncy, ncz) coarse grid
/// to an (nx, ny, nz) fine grid, where nc* = (n* + 1) / 2. Each fine cell
/// interpolates from up to 8 coarse cells; every row sums to 1 (exposed for
/// the unit tests).
SparseMatrix buildTrilinearProlongation(std::size_t nx, std::size_t ny,
                                        std::size_t nz, std::size_t ncx,
                                        std::size_t ncy, std::size_t ncz);

}  // namespace nh::util
