#pragma once
/// \file interp.hpp
/// 1-D piecewise-linear interpolation over a monotonically increasing grid.
/// Used for tabulated waveforms (PWL sources) and post-processing of swept
/// benchmark series (crossover detection).

#include <vector>

namespace nh::util {

/// Piecewise-linear function defined by (x, y) knots with strictly
/// increasing x. Evaluation clamps outside the knot range.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  /// Throws std::invalid_argument when sizes differ, fewer than one knot is
  /// given, or x is not strictly increasing.
  PiecewiseLinear(std::vector<double> x, std::vector<double> y);

  double operator()(double x) const;
  std::size_t knotCount() const { return x_.size(); }
  const std::vector<double>& xs() const { return x_; }
  const std::vector<double>& ys() const { return y_; }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// Linear interpolation between two points.
double lerp(double a, double b, double t);

/// Find x where the piecewise-linear series (xs, ys) first crosses \p level
/// (series need not be monotone). Returns NaN when it never crosses.
double firstCrossing(const std::vector<double>& xs, const std::vector<double>& ys,
                     double level);

}  // namespace nh::util
