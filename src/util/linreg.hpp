#pragma once
/// \file linreg.hpp
/// Ordinary least-squares utilities. The alpha-value extraction of the paper
/// (Eq. 3 and Eq. 4) is a linear regression of cell temperature against
/// dissipated power; R^2 is reported so callers can assert linearity.

#include <cstddef>
#include <vector>

namespace nh::util {

/// Result of a simple y = intercept + slope * x fit.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double rSquared = 0.0;   ///< Coefficient of determination.
  std::size_t samples = 0;
};

/// Fit y = a + b*x by ordinary least squares. Requires >= 2 samples with
/// non-degenerate x spread; throws std::invalid_argument otherwise.
LinearFit fitLinear(const std::vector<double>& x, const std::vector<double>& y);

/// Fit y = b*x (zero intercept). Useful when T0 is known exactly and we fit
/// the excess temperature directly against power.
LinearFit fitProportional(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Pearson correlation coefficient.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace nh::util
