#pragma once
/// \file config.hpp
/// INI-style configuration files ("key = value" with optional [sections] and
/// '#'/';' comments). The paper's circuit framework is "parameterized based
/// on configuration files"; this is the equivalent mechanism for our stack
/// (crossbar geometry, biasing scheme, model parameters, attack settings).

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nh::util {

/// Parsed configuration. Keys are addressed as "section.key"; keys that
/// appear before any section header live in the "" (global) section and are
/// addressed by their bare name.
class Config {
 public:
  Config() = default;

  /// Parse from text. Throws std::runtime_error with line context on error.
  static Config fromString(const std::string& text);
  /// Load from file.
  static Config load(const std::filesystem::path& path);

  /// True when \p key exists.
  bool has(const std::string& key) const;
  /// Raw string lookup; std::nullopt when absent.
  std::optional<std::string> getString(const std::string& key) const;
  /// Typed lookups with defaults. Throw std::invalid_argument when the value
  /// exists but cannot be parsed.
  std::string getString(const std::string& key, const std::string& fallback) const;
  double getDouble(const std::string& key, double fallback) const;
  long long getInt(const std::string& key, long long fallback) const;
  bool getBool(const std::string& key, bool fallback) const;
  /// Required variants: throw std::out_of_range when missing.
  double requireDouble(const std::string& key) const;
  long long requireInt(const std::string& key) const;
  std::string requireString(const std::string& key) const;

  /// Comma-separated list of doubles ("10, 50, 90").
  std::vector<double> getDoubleList(const std::string& key) const;

  /// Insert/overwrite a value programmatically.
  void set(const std::string& key, const std::string& value);

  /// All keys in deterministic (sorted) order; used for dumping.
  std::vector<std::string> keys() const;
  /// Serialise back to INI text (sorted keys, sections reconstructed).
  std::string toString() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace nh::util
