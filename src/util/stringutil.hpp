#pragma once
/// \file stringutil.hpp
/// Small string helpers shared by the config/CSV/stimuli parsers.

#include <string>
#include <string_view>
#include <vector>

namespace nh::util {

/// Strip leading/trailing whitespace.
std::string trim(std::string_view s);
/// Split on \p delim; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);
/// Split on any run of whitespace; empty fields dropped.
std::vector<std::string> splitWhitespace(std::string_view s);
/// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);
/// Lower-case copy (ASCII).
std::string toLower(std::string_view s);
/// True when \p s starts with \p prefix.
bool startsWith(std::string_view s, std::string_view prefix);
/// Parse a double, throwing std::invalid_argument with context on failure.
double parseDouble(std::string_view s, std::string_view context = "");
/// Parse a non-negative integer, throwing std::invalid_argument on failure.
long long parseInt(std::string_view s, std::string_view context = "");

}  // namespace nh::util
