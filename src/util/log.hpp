#pragma once
/// \file log.hpp
/// Lightweight leveled logger. Simulation sweeps log progress at Info; the
/// numerical kernels log convergence diagnostics at Debug. A global level
/// keeps benches quiet by default.

#include <sstream>
#include <string>

namespace nh::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the process-wide minimum level (default: Warn, so library use is
/// silent unless something is wrong).
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit a message at \p level to stderr when enabled.
void logMessage(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void logDebug(Args&&... args) {
  if (logLevel() <= LogLevel::Debug)
    logMessage(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void logInfo(Args&&... args) {
  if (logLevel() <= LogLevel::Info)
    logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void logWarn(Args&&... args) {
  if (logLevel() <= LogLevel::Warn)
    logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void logError(Args&&... args) {
  if (logLevel() <= LogLevel::Error)
    logMessage(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace nh::util
