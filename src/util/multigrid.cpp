#include "util/multigrid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/cancellation.hpp"
#include "util/faultinject.hpp"
#include "util/threadpool.hpp"

namespace nh::util {

namespace {

/// Every Gauss-Seidel sweep divides by the row diagonal, so a level matrix
/// with a missing/zero/non-finite diagonal entry must be rejected at setup
/// time (compute() returning false trips the Multigrid -> IC(0) -> Jacobi
/// fallback ladder) rather than detonating inside the smoother -- the old
/// assert was silent under NDEBUG and the division produced Inf/NaN.
bool hasUsableDiagonal(const SparseMatrix& a) {
  const auto& rowPtr = a.rowPtr();
  const auto& colIdx = a.colIdx();
  const auto& val = a.values();
  const std::size_t n = a.rows();
  for (std::size_t r = 0; r < n; ++r) {
    double diag = 0.0;
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      if (colIdx[k] == r) {
        diag = val[k];
        break;
      }
    }
    if (diag == 0.0 || !std::isfinite(diag)) return false;
  }
  return true;
}

/// 1-D cell-centred interpolation weights for fine cell \p i from the
/// bracketing coarse cells. Fine centres sit at i + 0.5 (fine-spacing
/// units), coarse centres at 2I + 1; boundary cells clamp, collapsing to a
/// single weight-1 entry.
struct LineWeights {
  std::size_t idx[2];
  double w[2];
  int count;
};

LineWeights lineWeights(std::size_t i, std::size_t nc) {
  const double t = (static_cast<double>(i) - 0.5) / 2.0;
  const double fl = std::floor(t);
  const double frac = t - fl;
  long left = static_cast<long>(fl);
  long right = left + 1;
  const long last = static_cast<long>(nc) - 1;
  left = left < 0 ? 0 : (left > last ? last : left);
  right = right < 0 ? 0 : (right > last ? last : right);

  LineWeights out;
  if (left == right) {
    out.idx[0] = static_cast<std::size_t>(left);
    out.w[0] = 1.0;
    out.count = 1;
  } else {
    out.idx[0] = static_cast<std::size_t>(left);
    out.w[0] = 1.0 - frac;
    out.idx[1] = static_cast<std::size_t>(right);
    out.w[1] = frac;
    out.count = 2;
  }
  return out;
}

/// One forward Gauss-Seidel sweep x <- x + D^-1-weighted row updates in
/// ascending row order. Serial and deterministic by construction.
void gaussSeidelForward(const SparseMatrix& a, const Vector& b, Vector& x) {
  const auto& rowPtr = a.rowPtr();
  const auto& colIdx = a.colIdx();
  const auto& val = a.values();
  const std::size_t n = a.rows();
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[r];
    double diag = 0.0;
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      const std::size_t c = colIdx[k];
      if (c == r) {
        diag = val[k];
      } else {
        acc -= val[k] * x[c];
      }
    }
    // Nonzero diagonals are guaranteed by the hasUsableDiagonal() check at
    // setup; compute() refuses hierarchies that would divide by zero here.
    x[r] = acc / diag;
  }
}

/// The adjoint sweep (descending rows); pairing it with the forward sweep
/// around the coarse correction keeps the V-cycle symmetric.
void gaussSeidelBackward(const SparseMatrix& a, const Vector& b, Vector& x) {
  const auto& rowPtr = a.rowPtr();
  const auto& colIdx = a.colIdx();
  const auto& val = a.values();
  for (std::size_t r = a.rows(); r-- > 0;) {
    double acc = b[r];
    double diag = 0.0;
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      const std::size_t c = colIdx[k];
      if (c == r) {
        diag = val[k];
      } else {
        acc -= val[k] * x[c];
      }
    }
    x[r] = acc / diag;  // nonzero by the setup-time hasUsableDiagonal() check
  }
}

/// Per-color row count at/above which one color's sweep fans out over the
/// shared thread pool; below it the fork/join overhead dominates.
constexpr std::size_t kParallelSweepMinRows = 8192;

/// One multicolor Gauss-Seidel sweep. Colors run in ascending order for the
/// forward sweep and descending for the adjoint (backward) sweep; rows
/// within one color touch no other row of that color (the coloring
/// guarantee), so they update independently -- serially or over the pool,
/// the result is identical.
void multicolorSweep(const SparseMatrix& a, const Vector& invDiag,
                     const std::vector<std::size_t>& colorPtr,
                     const std::vector<std::size_t>& colorOrder,
                     const Vector& b, Vector& x, bool reverseColors) {
  const auto& rowPtr = a.rowPtr();
  const auto& colIdx = a.colIdx();
  const auto& val = a.values();
  const std::size_t colorCount = colorPtr.size() - 1;
  for (std::size_t step = 0; step < colorCount; ++step) {
    const std::size_t c = reverseColors ? colorCount - 1 - step : step;
    const std::size_t begin = colorPtr[c];
    const std::size_t end = colorPtr[c + 1];
    const auto sweepRange = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t r = colorOrder[i];
        double acc = b[r];
        for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
          const std::size_t cc = colIdx[k];
          if (cc != r) acc -= val[k] * x[cc];
        }
        x[r] = acc * invDiag[r];  // division hoisted to compute() time
      }
    };
    const std::size_t count = end - begin;
    ThreadPool& pool = ThreadPool::shared();
    if (count < kParallelSweepMinRows || pool.size() < 2) {
      sweepRange(begin, end);
      continue;
    }
    const std::size_t chunks = std::min(count, pool.size() + 1);
    const std::size_t per = (count + chunks - 1) / chunks;
    pool.parallelFor(chunks, [&](std::size_t chunk) {
      const std::size_t lo = begin + chunk * per;
      sweepRange(lo, std::min(end, lo + per));
    });
  }
}

/// Greedy sequential coloring of the operator's adjacency graph plus the
/// inverse diagonal. Correct for structurally symmetric matrices (every SPD
/// operator GMG accepts): row r's stored columns enumerate all of its
/// neighbours, so no two rows with a direct coupling end up in one color.
/// Yields 2 colors on the 7-point fine stencils and up to ~8 on the
/// 27-point Galerkin coarse operators. O(nnz).
void buildSmootherData(const SparseMatrix& a, Vector& invDiag,
                       std::vector<std::size_t>& colorPtr,
                       std::vector<std::size_t>& colorOrder) {
  const auto& rowPtr = a.rowPtr();
  const auto& colIdx = a.colIdx();
  const auto& val = a.values();
  const std::size_t n = a.rows();
  constexpr std::size_t kUncolored = static_cast<std::size_t>(-1);

  invDiag.assign(n, 0.0);
  std::vector<std::size_t> color(n, kUncolored);
  std::vector<char> used;  // scratch: colors taken by already-colored peers
  std::size_t colorCount = 0;
  for (std::size_t r = 0; r < n; ++r) {
    used.assign(colorCount + 1, 0);
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      const std::size_t c = colIdx[k];
      if (c == r) {
        invDiag[r] = 1.0 / val[k];  // nonzero via hasUsableDiagonal()
      } else if (color[c] != kUncolored) {
        used[color[c]] = 1;
      }
    }
    std::size_t pick = 0;
    while (used[pick]) ++pick;
    color[r] = pick;
    colorCount = std::max(colorCount, pick + 1);
  }

  // Counting sort rows by color; ascending row order within each color.
  colorPtr.assign(colorCount + 1, 0);
  for (std::size_t r = 0; r < n; ++r) colorPtr[color[r] + 1]++;
  for (std::size_t c = 0; c < colorCount; ++c) colorPtr[c + 1] += colorPtr[c];
  colorOrder.resize(n);
  std::vector<std::size_t> cursor(colorPtr.begin(), colorPtr.end() - 1);
  for (std::size_t r = 0; r < n; ++r) colorOrder[cursor[color[r]]++] = r;
}

}  // namespace

SparseMatrix buildTrilinearProlongation(std::size_t nx, std::size_t ny,
                                        std::size_t nz, std::size_t ncx,
                                        std::size_t ncy, std::size_t ncz) {
  TripletBuilder builder(nx * ny * nz, ncx * ncy * ncz);
  for (std::size_t k = 0; k < nz; ++k) {
    const LineWeights wz = lineWeights(k, ncz);
    for (std::size_t j = 0; j < ny; ++j) {
      const LineWeights wy = lineWeights(j, ncy);
      for (std::size_t i = 0; i < nx; ++i) {
        const LineWeights wx = lineWeights(i, ncx);
        const std::size_t fineIdx = (k * ny + j) * nx + i;
        for (int a = 0; a < wz.count; ++a) {
          for (int b = 0; b < wy.count; ++b) {
            for (int c = 0; c < wx.count; ++c) {
              const std::size_t coarseIdx =
                  (wz.idx[a] * ncy + wy.idx[b]) * ncx + wx.idx[c];
              builder.add(fineIdx, coarseIdx, wz.w[a] * wy.w[b] * wx.w[c]);
            }
          }
        }
      }
    }
  }
  return SparseMatrix::fromTriplets(builder);
}

bool GeometricMultigrid::compute(const SparseMatrix& a, const Options& options) {
  valid_ = false;
  const std::size_t n = a.rows();
  if (n == 0 || a.cols() != n) return false;
  if (options.nx * options.ny * options.nz != n) return false;
  if (n <= options.maxCoarseRows) return false;  // IC(0) territory
  // Fault site: tests force a setup failure to prove the fallback ladder.
  if (faultinject::shouldFire("multigrid.setup")) return false;
  if (!hasUsableDiagonal(a)) return false;  // smoothers divide by the diagonal

  const bool reuseTransfers =
      !levels_.empty() && options_.nx == options.nx &&
      options_.ny == options.ny && options_.nz == options.nz &&
      options_.maxCoarseRows == options.maxCoarseRows;
  options_ = options;
  fine_ = &a;

  if (!reuseTransfers) {
    levels_.clear();
    std::size_t nx = options.nx;
    std::size_t ny = options.ny;
    std::size_t nz = options.nz;
    while (nx * ny * nz > options.maxCoarseRows) {
      const std::size_t ncx = (nx + 1) / 2;
      const std::size_t ncy = (ny + 1) / 2;
      const std::size_t ncz = (nz + 1) / 2;
      if (ncx * ncy * ncz == nx * ny * nz) break;  // cannot shrink further
      Level level;
      level.nx = ncx;
      level.ny = ncy;
      level.nz = ncz;
      level.prolong = buildTrilinearProlongation(nx, ny, nz, ncx, ncy, ncz);
      level.restrict_ = level.prolong.transposed();
      levels_.push_back(std::move(level));
      nx = ncx;
      ny = ncy;
      nz = ncz;
    }
    if (levels_.empty()) return false;
  }

  // Galerkin chain A_{l+1} = R_l A_l P_l down the hierarchy, through the
  // per-level SpGemm plans: the first compute() (or any structure change)
  // runs the full SpGEMM and captures the structures; frozen-hierarchy
  // recomputes -- same grid, same stencil pattern, new values -- refill the
  // cached A P and R (A P) products in O(nnz) with no allocation.
  const SparseMatrix* current = &a;
  for (Level& level : levels_) {
    level.apPlan.multiply(*current, level.prolong, level.ap);
    level.rapPlan.multiply(level.restrict_, level.ap, level.coarseA);
    if (!hasUsableDiagonal(level.coarseA)) return false;
    current = &level.coarseA;
  }

  // RedBlack smoother state: recolor + refresh the inverse diagonal for
  // every smoothed operator (the coarsest is LU-solved, never smoothed).
  // Coloring is O(nnz) per level, dwarfed by the Galerkin products above.
  if (options_.smoother == MultigridSmoother::RedBlack) {
    smoothers_.resize(levels_.size());
    const SparseMatrix* op = &a;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      buildSmootherData(*op, smoothers_[l].invDiag, smoothers_[l].colorPtr,
                        smoothers_[l].colorOrder);
      op = &levels_[l].coarseA;
    }
  } else {
    smoothers_.clear();
  }

  // Direct solve at the bottom: densify and LU-factor once.
  const SparseMatrix& coarse = levels_.back().coarseA;
  const std::size_t nc = coarse.rows();
  coarseDense_.resize(nc, nc, 0.0);
  for (std::size_t r = 0; r < nc; ++r) {
    for (std::size_t k = coarse.rowPtr()[r]; k < coarse.rowPtr()[r + 1]; ++k) {
      coarseDense_(r, coarse.colIdx()[k]) = coarse.values()[k];
    }
  }
  if (!coarseLu_.refactor(coarseDense_)) return false;
  valid_ = true;
  return true;
}

void GeometricMultigrid::cycle(std::size_t l, const Vector& b, Vector& x) const {
  checkCancellation("multigrid v-cycle");
  const SparseMatrix& a = l == 0 ? *fine_ : levels_[l - 1].coarseA;
  if (l == levels_.size()) {
    x = b;
    coarseLu_.solveInPlace(x);
    return;
  }
  const bool redBlack = options_.smoother == MultigridSmoother::RedBlack;
  for (std::size_t s = 0; s < options_.preSmooth; ++s) {
    if (redBlack) {
      const SmootherData& sm = smoothers_[l];
      multicolorSweep(a, sm.invDiag, sm.colorPtr, sm.colorOrder, b, x,
                      /*reverseColors=*/false);
    } else {
      gaussSeidelForward(a, b, x);
    }
  }

  Vector& res = l == 0 ? fineScratch_ : levels_[l - 1].scratch;
  res.resize(a.rows());
  a.multiplyInto(x, res);
  for (std::size_t i = 0; i < res.size(); ++i) res[i] = b[i] - res[i];

  const Level& next = levels_[l];
  next.b.resize(next.restrict_.rows());
  next.restrict_.multiplyInto(res, next.b);
  next.x.assign(next.b.size(), 0.0);
  cycle(l + 1, next.b, next.x);

  next.prolong.multiplyInto(next.x, res);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += res[i];

  // The adjoint of the ascending-color sweep is the descending-color sweep
  // (within a color the update is Jacobi-like, its own adjoint), so the
  // pre/post pairing keeps the V-cycle a symmetric preconditioner either way.
  for (std::size_t s = 0; s < options_.postSmooth; ++s) {
    if (redBlack) {
      const SmootherData& sm = smoothers_[l];
      multicolorSweep(a, sm.invDiag, sm.colorPtr, sm.colorOrder, b, x,
                      /*reverseColors=*/true);
    } else {
      gaussSeidelBackward(a, b, x);
    }
  }
}

void GeometricMultigrid::apply(const Vector& r, Vector& z) const {
  assert(valid_);
  assert(r.size() == fine_->rows());
  z.assign(fine_->rows(), 0.0);
  cycle(0, r, z);
}

}  // namespace nh::util
