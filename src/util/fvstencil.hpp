#pragma once
/// \file fvstencil.hpp
/// Synthetic structured-grid FV operators shared by the solver benchmarks
/// and the solver-core tests. Keeping one copy matters: the benchmark's
/// recorded cg_iterations trajectory and the tests' grid-scaling assertions
/// are only comparable while both build the *same* operator.

#include <cstddef>

#include "util/sparse.hpp"

namespace nh::util {

/// Stamp the steady FV heat operator on an m^3 grid with uniform face
/// conductance \p scale: 7-point stencil plus a Dirichlet lump on the
/// bottom (k == 0) plane only, no mass term. Its condition number grows
/// O(m^2) -- the regime where IC(0)'s CG iteration count climbs with the
/// grid edge and the multigrid preconditioner stays flat.
inline void stampFvSteady3d(TripletBuilder& builder, std::size_t m,
                            double scale) {
  const auto idx = [m](std::size_t i, std::size_t j, std::size_t k) {
    return (k * m + j) * m + i;
  };
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t v = idx(i, j, k);
        double diag = 0.0;
        const auto visit = [&](std::size_t nv) {
          diag += scale;
          builder.add(v, nv, -scale);
        };
        if (i > 0) visit(idx(i - 1, j, k));
        if (i + 1 < m) visit(idx(i + 1, j, k));
        if (j > 0) visit(idx(i, j - 1, k));
        if (j + 1 < m) visit(idx(i, j + 1, k));
        if (k > 0) visit(idx(i, j, k - 1));
        if (k + 1 < m) visit(idx(i, j, k + 1));
        if (k == 0) diag += 2.0 * scale;  // ambient Dirichlet at the bottom
        builder.add(v, v, diag);
      }
    }
  }
}

/// Convenience: the assembled CSR form of stampFvSteady3d.
inline SparseMatrix makeSteadyFvOperator3d(std::size_t m, double scale) {
  TripletBuilder builder(m * m * m, m * m * m);
  stampFvSteady3d(builder, m, scale);
  return SparseMatrix::fromTriplets(builder);
}

}  // namespace nh::util
