#pragma once
/// \file faultinject.hpp
/// Test-only fault-injection registry.
///
/// Solver code plants named *sites* at its failure-prone spots (singular
/// factorization exits, CG convergence, Newton stepping) by asking
/// `shouldFire("site.name")` whether this call is the one an armed policy
/// wants to fail. Tests arm a site programmatically (`arm`) or operators arm
/// one from the environment (`NH_FAULT=site:n[@scope]`, comma-separated for
/// several sites); the nth matching call then reports "fire", the site
/// disarms itself, and the solver takes its ordinary failure path -- which is
/// exactly what makes the injection useful: every isolation / retry /
/// fallback path downstream of a real failure can be exercised
/// deterministically.
///
/// Scopes pin a policy to one region of the run. The experiment engine tags
/// each grid point with `Scope("point:<index>")`, so `arm("linsolve.dense_lu",
/// 1, "point:2")` fails the first dense factorization *inside point 2 only*,
/// regardless of thread count or call interleaving.
///
/// When nothing is armed (the production case), `shouldFire` is one relaxed
/// atomic load.

#include <cstddef>
#include <string>

namespace nh::util::faultinject {

/// True when at least one site is armed; the fast gate for the site hooks.
bool enabled();

/// Site hook. Returns true exactly once: on the nth call made from a
/// matching scope while \p site is armed. Unarmed (or mismatched-scope, or
/// already-fired) calls return false. Never throws.
bool shouldFire(const char* site);

/// Arm \p site to fire on its \p nthCall-th matching call (1-based). An
/// empty \p scope matches every call; otherwise only calls whose ambient
/// Scope label equals \p scope are counted. Re-arming a site resets its
/// counter.
void arm(const std::string& site, std::size_t nthCall,
         const std::string& scope = "");

/// Arm every well-formed entry of an NH_FAULT-style spec string
/// (`site:n[@scope]`, comma-separated). Malformed entries are skipped with a
/// one-line stderr warning naming the bad entry -- a typo'd injection spec
/// must not masquerade as a clean run. Returns the number of sites armed.
/// The NH_FAULT environment variable is fed through this parser before
/// main().
std::size_t armFromSpec(const std::string& spec);

/// Remove the policy for \p site (no-op when not armed).
void disarm(const std::string& site);

/// Remove every policy and reset every counter (test teardown).
void clearAll();

/// Matching calls observed by \p site since it was (re-)armed; 0 when the
/// site is unknown.
std::size_t callCount(const std::string& site);

/// True when \p site is armed and has already fired.
bool fired(const std::string& site);

/// RAII ambient scope label (thread-local, restores the previous label on
/// destruction). The experiment engine wraps each grid point in
/// Scope("point:<index>").
class Scope {
 public:
  explicit Scope(std::string label);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  std::string previous_;
};

/// This thread's ambient scope label ("" outside any Scope).
std::string currentScope();

}  // namespace nh::util::faultinject
