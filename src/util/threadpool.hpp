#pragma once
/// \file threadpool.hpp
/// Fixed-size worker pool with a `parallelFor` primitive for the sweep
/// harness. Every Fig. 3 sweep point builds a fresh all-HRS array, so the
/// points are embarrassingly parallel; callers write results into
/// preallocated slots indexed by the loop variable, which keeps output
/// ordering deterministic regardless of the thread count.
///
/// All shared state is annotated for Clang's thread-safety analysis (see
/// util/annotations.hpp): the job queue, the active-worker count, and the
/// stop flag are `NH_GUARDED_BY(mutex_)`, so an access outside the lock is a
/// compile error on clang, not a TSan report later.

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace nh::util {

/// Worker count used when a caller passes 0: the NH_THREADS environment
/// variable when set to a positive integer, otherwise the hardware
/// concurrency (minimum 1).
std::size_t defaultThreadCount();

/// Oversubscription guard shared by every way of requesting a worker count
/// (NH_THREADS, the nh_sweep --threads flag): returns \p requested clamped
/// to 4x the hardware concurrency, warning on stderr (prefixed with \p tag)
/// each time the clamp engages. 0 passes through (= default). Callers on
/// hot paths cache the result -- defaultThreadCount resolves NH_THREADS
/// through a function-local static, so its warning prints once per process.
std::size_t clampThreadCount(std::size_t requested, const char* tag);

/// Fixed pool of worker threads draining a FIFO job queue.
class ThreadPool {
 public:
  /// Spawn \p threads workers (0 = defaultThreadCount()).
  explicit ThreadPool(std::size_t threads = 0);
  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one job. Jobs must not throw; use parallelFor for bodies that
  /// can fail (it captures and rethrows the first exception).
  void submit(std::function<void()> job) NH_EXCLUDES(mutex_);

  /// Block until the queue is empty and every worker is idle.
  void wait() NH_EXCLUDES(mutex_);

  /// Run body(0..count-1) across the pool; the calling thread participates,
  /// so up to size()+1 bodies execute concurrently. Iterations are claimed
  /// dynamically (atomic counter), so the execution order is unspecified --
  /// bodies must only touch their own index's state. Blocks until every
  /// iteration finished. A throwing body does not stop the others: the
  /// remaining indices keep draining (per-slot isolation must not depend on
  /// scheduling order), and the first exception is rethrown at the barrier
  /// wrapped in a std::runtime_error naming the failing index
  /// (util::CancelledError passes through unwrapped). The caller's ambient
  /// cancellation token (util/cancellation.hpp) is propagated onto every
  /// helper and checked between iterations; a cancelled loop stops claiming
  /// indices and throws CancelledError at the barrier. Called from inside a
  /// task of this same pool, the loop runs inline on that worker (no helper
  /// jobs), which makes nested use safe instead of a deadlock.
  void parallelFor(std::size_t count, const std::function<void(std::size_t)>& body)
      NH_EXCLUDES(mutex_);

  /// Process-wide pool created on first use, sized so that a parallelFor on
  /// it runs defaultThreadCount() concurrent bodies (workers + caller).
  static ThreadPool& shared();

 private:
  void workerLoop() NH_EXCLUDES(mutex_);

  // The TSA smoke probe (tests/tsa_probe.cpp, scripts/check-tsa-probe) reads
  // jobs_ without the lock and MUST fail to compile; see
  // docs/static-analysis.md.
  friend class ThreadPoolTsaProbe;

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::deque<std::function<void()>> jobs_ NH_GUARDED_BY(mutex_);
  std::size_t active_ NH_GUARDED_BY(mutex_) = 0;
  bool stopping_ NH_GUARDED_BY(mutex_) = false;
  CondVar jobReady_;
  CondVar idle_;
};

/// Convenience wrapper: run body(0..count-1) with \p threads concurrent
/// executors in total, the calling thread included (0 = defaultThreadCount()).
/// threads == 1 runs serially on the calling thread with no pool involved --
/// the baseline the equivalence tests compare against.
void parallelFor(std::size_t count, const std::function<void(std::size_t)>& body,
                 std::size_t threads = 0);

}  // namespace nh::util
