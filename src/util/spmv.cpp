#include "util/spmv.hpp"

#include <cstdlib>
#include <cstring>

namespace nh::util::spmv {

void rowRangeReference(const std::size_t* rowPtr, const std::size_t* colIdx,
                       const double* val, const double* x, double* y,
                       std::size_t begin, std::size_t end) {
  for (std::size_t r = begin; r < end; ++r) {
    std::size_t k = rowPtr[r];
    const std::size_t kEnd = rowPtr[r + 1];
    double acc;
    if (kEnd - k >= kWideRowMinEntries) {
      // Register-blocked path for the dense-ish rows (27-point Galerkin
      // coarse operators, full-weighting restriction): eight independent
      // accumulators keep the gather/multiply pipeline full where the
      // 4-wide block stalls on the add latency chain.
      double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
      double a4 = 0.0, a5 = 0.0, a6 = 0.0, a7 = 0.0;
      for (; k + 8 <= kEnd; k += 8) {
        a0 += val[k] * x[colIdx[k]];
        a1 += val[k + 1] * x[colIdx[k + 1]];
        a2 += val[k + 2] * x[colIdx[k + 2]];
        a3 += val[k + 3] * x[colIdx[k + 3]];
        a4 += val[k + 4] * x[colIdx[k + 4]];
        a5 += val[k + 5] * x[colIdx[k + 5]];
        a6 += val[k + 6] * x[colIdx[k + 6]];
        a7 += val[k + 7] * x[colIdx[k + 7]];
      }
      acc = ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7));
    } else {
      // Narrow rows keep the historical 4-wide pattern bit-for-bit: every
      // FV stencil row (7-point fine operators, trilinear prolongation)
      // lands here, so default solver results are unchanged.
      double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
      for (; k + 4 <= kEnd; k += 4) {
        a0 += val[k] * x[colIdx[k]];
        a1 += val[k + 1] * x[colIdx[k + 1]];
        a2 += val[k + 2] * x[colIdx[k + 2]];
        a3 += val[k + 3] * x[colIdx[k + 3]];
      }
      acc = (a0 + a1) + (a2 + a3);
    }
    for (; k < kEnd; ++k) acc += val[k] * x[colIdx[k]];
    y[r] = acc;
  }
}

#if defined(NH_SPMV_AVX2)
namespace detail {
// Defined in spmv_avx2.cpp (the only TU compiled with -mavx2). Safe to call
// only after __builtin_cpu_supports("avx2") returned true.
void rowRangeAvx2(const std::size_t* rowPtr, const std::size_t* colIdx,
                  const double* val, const double* x, double* y,
                  std::size_t begin, std::size_t end);
}  // namespace detail
#endif

namespace {

struct ResolvedKernel {
  RowRangeFn fn = &rowRangeReference;
  const char* name = "scalar";
};

ResolvedKernel resolve() {
  ResolvedKernel k;
  // NH_SPMV=scalar pins the reference kernel: used by the BM_SpMvSimd
  // benchmarks for in-binary A/B runs and for debugging dispatch issues.
  const char* env = std::getenv("NH_SPMV");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) return k;
#if defined(NH_SPMV_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    k.fn = &detail::rowRangeAvx2;
    k.name = "avx2";
  }
#endif
  return k;
}

const ResolvedKernel& resolved() {
  static const ResolvedKernel k = resolve();
  return k;
}

}  // namespace

RowRangeFn activeKernel() { return resolved().fn; }

const char* activeKernelName() { return resolved().name; }

}  // namespace nh::util::spmv
