#pragma once
/// \file linsolve.hpp
/// Linear solvers: dense LU with partial pivoting for the small MNA systems,
/// and preconditioned conjugate gradient (Jacobi or zero-fill incomplete
/// Cholesky) / BiCGSTAB for the large symmetric-positive-definite systems
/// produced by the finite-volume PDE discretisations.

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "util/matrix.hpp"
#include "util/sparse.hpp"

namespace nh::util {

class GeometricMultigrid;  // util/multigrid.hpp
class CgWorkspace;         // declared below

/// Outcome of an iterative solve.
struct IterativeResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residualNorm = 0.0;  ///< Final ||b - A x|| / ||b||.
  /// True when the solve stopped because its values went non-finite (or the
  /// operator lost positive-definiteness) rather than merely hitting the
  /// iteration cap: the NaN/Inf guards fail fast instead of iterating to
  /// maxIter on poisoned values.
  bool breakdown = false;
};

/// Structured failure report thrown by the higher-level solve drivers
/// (Newton loops, the fast-engine network solves) when a linear or nonlinear
/// solve cannot produce a usable answer. Carries which solve failed, how far
/// it got, and the final residual -- so callers (the experiment engine's
/// per-point isolation, logs, tests) see a diagnosis instead of a bare
/// std::runtime_error.
class SolverError : public std::runtime_error {
 public:
  SolverError(const std::string& solve, const std::string& detail,
              std::size_t iterations = 0, double residualNorm = 0.0);

  /// Which solve failed, e.g. "schur-cg" or "fastsim.newton".
  const std::string& solve() const { return solve_; }
  /// Iterations completed before the failure (0 when not applicable).
  std::size_t iterations() const { return iterations_; }
  /// Residual norm at the failure (0 when not applicable).
  double residualNorm() const { return residualNorm_; }

 private:
  std::string solve_;
  std::size_t iterations_;
  double residualNorm_;
};

/// LU factorisation with partial pivoting of a square dense matrix.
/// Factor once, solve many right-hand sides; refactor() re-runs the
/// elimination in the already-allocated storage, so transient loops that
/// re-factor a same-sized Jacobian never touch the heap.
class LuFactorization {
 public:
  /// Empty factorization; call refactor() before solving.
  LuFactorization() = default;

  /// Factor \p a. Returns std::nullopt when the matrix is singular to
  /// working precision.
  static std::optional<LuFactorization> factor(const Matrix& a);

  /// Re-factor \p a in place, reusing this object's storage when the size
  /// matches. Returns false (leaving the factorization invalid) when \p a is
  /// singular to working precision.
  bool refactor(const Matrix& a);

  /// True when the object holds a usable factorization.
  bool valid() const { return valid_; }

  /// Solve A x = b for one right-hand side.
  Vector solve(const Vector& b) const;

  /// Solve A x = b with b overwritten by the solution; no allocation.
  void solveInPlace(Vector& b) const;

  /// abs(product of U diagonal) — cheap singularity diagnostic.
  double absDeterminant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  mutable Vector scratch_;  ///< Permutation scratch for solveInPlace.
  bool valid_ = false;
};

/// Convenience one-shot dense solve. Throws std::runtime_error on singular A.
Vector solveDense(const Matrix& a, const Vector& b);

/// Non-owning view of a tridiagonal (or purely diagonal) matrix block. The
/// line-network diagonal blocks have exactly this shape: the lumped
/// one-node-per-line model couples lines only through the off-diagonal G
/// block (so A1/A2 are diagonal = tridiagonal with zero off-diagonals), and
/// the distributed per-segment line model chains neighbouring segments (true
/// tridiagonal). lower/upper may be nullptr for a diagonal block.
struct TridiagonalView {
  const double* diag = nullptr;   ///< n entries.
  const double* lower = nullptr;  ///< n-1 entries or nullptr (all zero).
  const double* upper = nullptr;  ///< n-1 entries or nullptr (all zero).
  std::size_t n = 0;

  static TridiagonalView diagonal(const Vector& d) {
    return {d.data(), nullptr, nullptr, d.size()};
  }
  static TridiagonalView tridiagonal(const Vector& lower, const Vector& d,
                                     const Vector& upper) {
    return {d.data(), lower.data(), upper.data(), d.size()};
  }
};

/// Thomas-algorithm factorisation of a tridiagonal block: O(n) factor and
/// solve instead of the O(n^2)/O(n^3) dense storage the Schur solver used
/// for the line blocks. No pivoting -- the line-network blocks are strictly
/// diagonally dominant (diagonal = driver + sum of couplings). factor()
/// reuses the allocation across refactorisations.
class TridiagonalFactor {
 public:
  /// Factor \p a. Returns false on a zero/non-finite pivot.
  bool factor(const TridiagonalView& a);
  bool valid() const { return valid_; }
  std::size_t size() const { return m_.size(); }

  /// Solve A x = b with b overwritten by the solution; no allocation.
  void solveInPlace(Vector& b) const;
  /// Raw-pointer overload (n entries) for matrix-free operator loops.
  void solveInPlace(double* b) const;
  /// Solve A X = B for every column of the n x m matrix \p b at once,
  /// overwriting it; the recurrences sweep whole rows so the row-major
  /// accesses stream.
  void solveRowsInPlace(Matrix& b) const;

 private:
  Vector c_;      ///< Scaled upper diagonal (n-1).
  Vector m_;      ///< Elimination pivots (n).
  Vector lower_;  ///< Copy of the lower diagonal (n-1; empty when diagonal).
  bool valid_ = false;
};

/// Controls for SchurComplementSolver.
struct SchurOptions {
  enum class Mode {
    Dense,      ///< Assemble the dense Schur complement and LU-factor it.
    Iterative,  ///< Matrix-free Jacobi-preconditioned CG on the complement.
    Auto,       ///< Iterative when n2 >= iterativeMinCols, else Dense.
  };
  Mode mode = Mode::Auto;
  /// Auto-mode crossover: the dense assembly is O(n1 n2^2) per solve, the
  /// matrix-free CG is O(n1 n2) per iteration, so CG wins once the column
  /// count clears the CG iteration count (tens for these diagonally
  /// dominant complements).
  std::size_t iterativeMinCols = 128;
  double cgRelTol = 1e-12;
  std::size_t cgMaxIter = 4000;
};

/// Solver for the bipartite block system
///   [ A1    -G  ] [x1]   [r1]
///   [ -G^T  A2  ] [x2] = [r2]
/// via the Schur complement on the second block:
///   (A2 - G^T A1^-1 G) x2 = r2 + G^T A1^-1 r1
///   x1 = A1^-1 (r1 + G x2)
/// The crossbar line network has exactly this shape: word lines couple only
/// to bit lines, never to each other, and the diagonal blocks A1/A2 are
/// (tri)diagonal. The dense path costs O(n1 n2^2 + n2^3) instead of the
/// O((n1+n2)^3) dense factorisation; the matrix-free iterative path applies
/// S x = A2 x - G^T (A1^-1 (G x)) in O(n1 n2) per CG iteration, which is
/// what takes megabit arrays past the dense-assembly wall. The workspace is
/// reused across calls, so Newton loops allocate nothing after the first.
class SchurComplementSolver {
 public:
  SchurComplementSolver();
  explicit SchurComplementSolver(SchurOptions options);
  ~SchurComplementSolver();
  SchurComplementSolver(SchurComplementSolver&&) noexcept;
  SchurComplementSolver& operator=(SchurComplementSolver&&) noexcept;

  SchurOptions& options() { return options_; }
  const SchurOptions& options() const { return options_; }

  /// Seed-compatible diagonal-block entry point: \p g of shape n1 x n2,
  /// \p d1 (size n1, entries nonzero), \p d2 (size n2), residual \p r (size
  /// n1+n2; first block first). \p x receives the solution (resized to
  /// n1+n2). Always takes the dense path -- byte-identical to the seed
  /// behaviour regardless of options(). Returns false when the Schur
  /// complement is singular to working precision.
  bool solve(const Vector& d1, const Vector& d2, const Matrix& g,
             const Vector& r, Vector& x);

  /// Banded-block entry point: tridiagonal (or diagonal) blocks \p a1
  /// (n1 x n1) and \p a2 (n2 x n2), coupling \p g (n1 x n2), residual \p r
  /// (n1+n2). Honours options(): Dense assembles the complement through a
  /// Thomas factorisation of A1, Iterative runs matrix-free CG. Returns
  /// false on a singular complement / non-converged CG.
  bool solveBanded(const TridiagonalView& a1, const TridiagonalView& a2,
                   const Matrix& g, const Vector& r, Vector& x);

  /// Diagnostics of the last solveBanded call in Iterative mode (zeros
  /// after a dense solve).
  const IterativeResult& lastIterative() const { return lastIterative_; }

 private:
  bool solveBandedDense(const TridiagonalView& a1, const TridiagonalView& a2,
                        const Matrix& g, const Vector& r, Vector& x);
  bool solveBandedIterative(const TridiagonalView& a1, const TridiagonalView& a2,
                            const Matrix& g, const Vector& r, Vector& x);

  SchurOptions options_;
  Matrix schur_;
  Vector rhs_;
  LuFactorization lu_;
  TridiagonalFactor a1Factor_;
  IterativeResult lastIterative_;
  // Iterative-path workspace.
  Vector t1_, x2_, invDiag_;
  Matrix w_;  ///< Dense-banded path: A1^-1 G.
  std::unique_ptr<CgWorkspace> cgWs_;  ///< Created on first iterative solve.
};

/// Zero-fill incomplete Cholesky factorisation IC(0) of an SPD sparse
/// matrix: L has exactly the sparsity of A's lower triangle, and the
/// preconditioner application is two triangular solves. compute() reuses the
/// previous allocation when the structure size is unchanged, so re-factoring
/// a sweep's matrices is allocation-free after the first.
class IncompleteCholesky {
 public:
  /// Factor \p a (must be square; only the lower triangle is read).
  /// Returns false on pivot breakdown -- the matrix is not SPD enough for
  /// IC(0) -- in which case valid() stays false and callers should fall back
  /// to the Jacobi preconditioner.
  bool compute(const SparseMatrix& a);
  bool valid() const { return valid_; }

  /// z = (L L^T)^{-1} r. Requires valid().
  void apply(const Vector& r, Vector& z) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> rowPtr_;   ///< CSR of L (lower triangle incl. diag).
  std::vector<std::size_t> colIdx_;
  std::vector<double> val_;
  bool valid_ = false;
};

/// Smoother used inside the geometric-multigrid V-cycle.
enum class MultigridSmoother {
  /// Serial forward/backward Gauss-Seidel in row order. The default: the 18
  /// tracked experiment baselines were recorded with it, and every sweep is
  /// bit-identical to the seed implementation.
  Lexicographic,
  /// Multicolor ("red-black") Gauss-Seidel with a cached inverse diagonal:
  /// rows are greedily colored once per hierarchy level at compute() time so
  /// that no two coupled rows share a color (2 colors on the 7-point fine
  /// stencil, up to ~8 on the 27-point Galerkin coarse operators); rows
  /// within a color are independent, so each color sweeps in parallel on the
  /// shared thread pool, deterministically for any thread count. Changes
  /// smoothing order, hence iterate values -- opt-in, not bit-compatible
  /// with the recorded baselines.
  RedBlack,
};

/// Preconditioner choice for solveConjugateGradient.
enum class CgPreconditioner {
  Jacobi,              ///< Diagonal scaling; always applicable.
  IncompleteCholesky,  ///< IC(0); silently falls back to Jacobi on breakdown.
  /// Geometric multigrid V-cycle for structured-voxel FV operators; needs
  /// CgOptions::gridNx/Ny/Nz and silently falls back to IC(0) (then Jacobi)
  /// when the grid is unknown, mismatched, or too small to coarsen.
  Multigrid,
};

/// Conjugate-gradient controls.
struct CgOptions {
  double relTol = 1e-8;
  std::size_t maxIter = 10000;
  CgPreconditioner preconditioner = CgPreconditioner::Jacobi;
  /// Reuse the workspace's preconditioner from the previous solve instead of
  /// recomputing it. Only valid when the matrix values are unchanged since
  /// that solve (e.g. the frozen operator of an implicit-Euler time loop).
  /// The Multigrid hierarchy additionally references the fine matrix by
  /// pointer, so it is only reused when the same SparseMatrix object is
  /// passed again (a different object triggers a rebuild, not a stale read).
  bool reusePreconditioner = false;
  /// Structured-grid dimensions of the operator for the Multigrid
  /// preconditioner (0 = unknown; their product must equal the matrix size
  /// or Multigrid falls back to IC(0)).
  std::size_t gridNx = 0, gridNy = 0, gridNz = 0;
  /// V-cycle smoother when preconditioner == Multigrid; ignored otherwise.
  MultigridSmoother multigridSmoother = MultigridSmoother::Lexicographic;
};

/// Scratch vectors and preconditioner state for solveConjugateGradient.
/// Passing the same workspace to repeated solves makes the CG internals
/// allocation-free after the first call.
class CgWorkspace {
 public:
  CgWorkspace();
  ~CgWorkspace();
  CgWorkspace(CgWorkspace&&) noexcept;
  CgWorkspace& operator=(CgWorkspace&&) noexcept;

  const IncompleteCholesky& preconditioner() const { return ic_; }
  /// Multigrid hierarchy of the last Multigrid solve (nullptr before one).
  const GeometricMultigrid* multigrid() const { return mg_.get(); }

 private:
  friend IterativeResult solveConjugateGradient(const SparseMatrix&,
                                                const Vector&, Vector&,
                                                const CgOptions&, CgWorkspace*);
  friend IterativeResult solveConjugateGradientOperator(
      std::size_t, const std::function<void(const Vector&, Vector&)>&,
      const Vector&, const Vector&, Vector&, double, std::size_t,
      CgWorkspace*);
  Vector r_, z_, p_, ap_, invDiag_;
  IncompleteCholesky ic_;
  std::unique_ptr<GeometricMultigrid> mg_;  ///< Created on first MG solve.
  /// Remembers an IC(0) breakdown so reusePreconditioner solves on the same
  /// frozen matrix go straight to Jacobi instead of re-failing every call.
  bool icFailed_ = false;
  bool mgFailed_ = false;  ///< Same, for a multigrid hierarchy that failed.
};

/// Preconditioned conjugate gradient for SPD systems.
/// \p x is used as the initial guess and holds the solution on return.
/// \p workspace (optional) carries scratch vectors and the IC(0) factor
/// across calls; without it the call allocates its own.
IterativeResult solveConjugateGradient(const SparseMatrix& a, const Vector& b,
                                       Vector& x, const CgOptions& options,
                                       CgWorkspace* workspace = nullptr);

/// Backward-compatible Jacobi-preconditioned overload.
IterativeResult solveConjugateGradient(const SparseMatrix& a, const Vector& b,
                                       Vector& x, double relTol = 1e-8,
                                       std::size_t maxIter = 10000);

/// Matrix-free CG: \p applyA computes y = A x for the SPD operator and
/// \p invDiag is the (approximate) inverse diagonal used as the Jacobi
/// preconditioner. Used where the operator is cheap to apply but expensive
/// to assemble -- the Schur complement of the bipartite line network is
/// fully dense (every word line couples every pair of bit lines), so at
/// megabit-array sizes only the operator form is affordable. \p x is the
/// initial guess and holds the solution on return.
IterativeResult solveConjugateGradientOperator(
    std::size_t n, const std::function<void(const Vector&, Vector&)>& applyA,
    const Vector& invDiag, const Vector& b, Vector& x, double relTol = 1e-8,
    std::size_t maxIter = 10000, CgWorkspace* workspace = nullptr);

/// Jacobi-preconditioned BiCGSTAB for general (possibly nonsymmetric)
/// systems; used as a fallback/validation path.
IterativeResult solveBiCgStab(const SparseMatrix& a, const Vector& b, Vector& x,
                              double relTol = 1e-8, std::size_t maxIter = 10000);

/// Thomas algorithm for tridiagonal systems (used by 1-D analytic
/// verification problems in the FEM tests).
/// \p lower has n-1 entries, \p diag n, \p upper n-1.
Vector solveTridiagonal(const Vector& lower, const Vector& diag,
                        const Vector& upper, const Vector& rhs);

/// Sparse LU factorisation with partial pivoting (left-looking
/// Gilbert-Peierls, natural column order). Built for the MNA jacobians of
/// large netlists: a full-array crossbar netlist has thousands of unknowns
/// but only a handful of entries per row, so the dense O(n^3) factorisation
/// (and its O(n^2) storage) is the scaling wall the sparse path removes.
/// refactor() reuses every allocation, so Newton loops and transient
/// marches refactor without touching the heap once the fill pattern has
/// stabilised.
class SparseLu {
 public:
  /// Factor the square matrix \p a. Returns false (leaving the
  /// factorisation invalid) when \p a is singular to working precision.
  ///
  /// Fill control: the first factorisation of a structure computes a
  /// reverse Cuthill-McKee ordering of the (symmetrised) pattern and
  /// factors P A P^T instead of A -- netlists numbered line-by-line (the
  /// crossbar's word-then-bit segment order has bandwidth O(n)) would
  /// otherwise fill near-densely. Re-factorisations with an unchanged
  /// structure (Newton loops) reuse the cached ordering; solveInPlace is
  /// permutation-transparent.
  bool refactor(const SparseMatrix& a);
  bool valid() const { return valid_; }
  std::size_t size() const { return n_; }
  /// Entries stored in L + U (fill diagnostic).
  std::size_t factorNonZeros() const { return lVal_.size() + uVal_.size(); }

  /// Solve A x = b with b overwritten by the solution; no allocation.
  void solveInPlace(Vector& b) const;

 private:
  /// Recompute perm_/iperm_ (reverse Cuthill-McKee) for a's structure.
  void computeOrdering(const SparseMatrix& a);

  std::size_t n_ = 0;
  // Fill-reducing symmetric ordering: factor rows/cols are perm_[k] of the
  // input; iperm_ is the inverse map. Cached against the input structure.
  std::vector<std::size_t> perm_, iperm_;
  std::vector<std::size_t> structRowPtr_, structColIdx_;
  // CSC factors: L unit-lower-triangular (unit diagonal stored), U upper
  // triangular with the pivot last in each column.
  std::vector<std::size_t> lPtr_, lIdx_, uPtr_, uIdx_;
  std::vector<double> lVal_, uVal_;
  std::vector<std::size_t> pinv_;  ///< Row -> pivot position.
  // CSC copy of the input (built by transposing the CSR) and workspaces.
  std::vector<std::size_t> cscPtr_, cscIdx_;
  std::vector<double> cscVal_;
  std::vector<double> x_;  ///< Dense numeric scatter.
  std::vector<std::size_t> stack_, pstack_, found_, xi_;  ///< DFS state.
  mutable Vector scratch_;                   ///< Permutation scratch.
  bool valid_ = false;
};

}  // namespace nh::util
