#pragma once
/// \file linsolve.hpp
/// Linear solvers: dense LU with partial pivoting for the small MNA systems,
/// and Jacobi-preconditioned conjugate gradient / BiCGSTAB for the large
/// symmetric-positive-definite systems produced by the finite-volume PDE
/// discretisations.

#include <cstddef>
#include <optional>

#include "util/matrix.hpp"
#include "util/sparse.hpp"

namespace nh::util {

/// Outcome of an iterative solve.
struct IterativeResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residualNorm = 0.0;  ///< Final ||b - A x|| / ||b||.
};

/// LU factorisation with partial pivoting of a square dense matrix.
/// Factor once, solve many right-hand sides (the transient circuit loop
/// re-uses the factorisation while the Jacobian is frozen).
class LuFactorization {
 public:
  /// Factor \p a. Returns std::nullopt when the matrix is singular to
  /// working precision.
  static std::optional<LuFactorization> factor(const Matrix& a);

  /// Solve A x = b for one right-hand side.
  Vector solve(const Vector& b) const;

  /// abs(product of U diagonal) — cheap singularity diagnostic.
  double absDeterminant() const;

 private:
  LuFactorization() = default;
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// Convenience one-shot dense solve. Throws std::runtime_error on singular A.
Vector solveDense(const Matrix& a, const Vector& b);

/// Jacobi (diagonal) preconditioned conjugate gradient for SPD systems.
/// \p x is used as the initial guess and holds the solution on return.
IterativeResult solveConjugateGradient(const SparseMatrix& a, const Vector& b,
                                       Vector& x, double relTol = 1e-8,
                                       std::size_t maxIter = 10000);

/// Jacobi-preconditioned BiCGSTAB for general (possibly nonsymmetric)
/// systems; used as a fallback/validation path.
IterativeResult solveBiCgStab(const SparseMatrix& a, const Vector& b, Vector& x,
                              double relTol = 1e-8, std::size_t maxIter = 10000);

/// Thomas algorithm for tridiagonal systems (used by 1-D analytic
/// verification problems in the FEM tests).
/// \p lower has n-1 entries, \p diag n, \p upper n-1.
Vector solveTridiagonal(const Vector& lower, const Vector& diag,
                        const Vector& upper, const Vector& rhs);

}  // namespace nh::util
