#pragma once
/// \file linsolve.hpp
/// Linear solvers: dense LU with partial pivoting for the small MNA systems,
/// and preconditioned conjugate gradient (Jacobi or zero-fill incomplete
/// Cholesky) / BiCGSTAB for the large symmetric-positive-definite systems
/// produced by the finite-volume PDE discretisations.

#include <cstddef>
#include <memory>
#include <optional>

#include "util/matrix.hpp"
#include "util/sparse.hpp"

namespace nh::util {

class GeometricMultigrid;  // util/multigrid.hpp

/// Outcome of an iterative solve.
struct IterativeResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residualNorm = 0.0;  ///< Final ||b - A x|| / ||b||.
};

/// LU factorisation with partial pivoting of a square dense matrix.
/// Factor once, solve many right-hand sides; refactor() re-runs the
/// elimination in the already-allocated storage, so transient loops that
/// re-factor a same-sized Jacobian never touch the heap.
class LuFactorization {
 public:
  /// Empty factorization; call refactor() before solving.
  LuFactorization() = default;

  /// Factor \p a. Returns std::nullopt when the matrix is singular to
  /// working precision.
  static std::optional<LuFactorization> factor(const Matrix& a);

  /// Re-factor \p a in place, reusing this object's storage when the size
  /// matches. Returns false (leaving the factorization invalid) when \p a is
  /// singular to working precision.
  bool refactor(const Matrix& a);

  /// True when the object holds a usable factorization.
  bool valid() const { return valid_; }

  /// Solve A x = b for one right-hand side.
  Vector solve(const Vector& b) const;

  /// Solve A x = b with b overwritten by the solution; no allocation.
  void solveInPlace(Vector& b) const;

  /// abs(product of U diagonal) — cheap singularity diagnostic.
  double absDeterminant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  mutable Vector scratch_;  ///< Permutation scratch for solveInPlace.
  bool valid_ = false;
};

/// Convenience one-shot dense solve. Throws std::runtime_error on singular A.
Vector solveDense(const Matrix& a, const Vector& b);

/// Solver for the bipartite block system
///   [ diag(d1)   -G      ] [x1]   [r1]
///   [ -G^T      diag(d2) ] [x2] = [r2]
/// via the Schur complement on the second block:
///   (diag(d2) - G^T diag(d1)^-1 G) x2 = r2 + G^T diag(d1)^-1 r1
///   x1 = diag(d1)^-1 (r1 + G x2)
/// Cost O(n1 n2^2 + n2^3) instead of the O((n1+n2)^3) dense factorisation.
/// The crossbar line network has exactly this shape: word lines couple only
/// to bit lines, never to each other. The workspace (Schur matrix, LU) is
/// reused across calls, so Newton loops allocate nothing after the first.
class SchurComplementSolver {
 public:
  /// Solve with \p g of shape n1 x n2, \p d1 (size n1, entries nonzero),
  /// \p d2 (size n2), residual \p r (size n1+n2; first block first). \p x
  /// receives the solution (resized to n1+n2). Returns false when the Schur
  /// complement is singular to working precision.
  bool solve(const Vector& d1, const Vector& d2, const Matrix& g,
             const Vector& r, Vector& x);

 private:
  Matrix schur_;
  Vector rhs_;
  LuFactorization lu_;
};

/// Zero-fill incomplete Cholesky factorisation IC(0) of an SPD sparse
/// matrix: L has exactly the sparsity of A's lower triangle, and the
/// preconditioner application is two triangular solves. compute() reuses the
/// previous allocation when the structure size is unchanged, so re-factoring
/// a sweep's matrices is allocation-free after the first.
class IncompleteCholesky {
 public:
  /// Factor \p a (must be square; only the lower triangle is read).
  /// Returns false on pivot breakdown -- the matrix is not SPD enough for
  /// IC(0) -- in which case valid() stays false and callers should fall back
  /// to the Jacobi preconditioner.
  bool compute(const SparseMatrix& a);
  bool valid() const { return valid_; }

  /// z = (L L^T)^{-1} r. Requires valid().
  void apply(const Vector& r, Vector& z) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> rowPtr_;   ///< CSR of L (lower triangle incl. diag).
  std::vector<std::size_t> colIdx_;
  std::vector<double> val_;
  bool valid_ = false;
};

/// Preconditioner choice for solveConjugateGradient.
enum class CgPreconditioner {
  Jacobi,              ///< Diagonal scaling; always applicable.
  IncompleteCholesky,  ///< IC(0); silently falls back to Jacobi on breakdown.
  /// Geometric multigrid V-cycle for structured-voxel FV operators; needs
  /// CgOptions::gridNx/Ny/Nz and silently falls back to IC(0) (then Jacobi)
  /// when the grid is unknown, mismatched, or too small to coarsen.
  Multigrid,
};

/// Conjugate-gradient controls.
struct CgOptions {
  double relTol = 1e-8;
  std::size_t maxIter = 10000;
  CgPreconditioner preconditioner = CgPreconditioner::Jacobi;
  /// Reuse the workspace's preconditioner from the previous solve instead of
  /// recomputing it. Only valid when the matrix values are unchanged since
  /// that solve (e.g. the frozen operator of an implicit-Euler time loop).
  /// The Multigrid hierarchy additionally references the fine matrix by
  /// pointer, so it is only reused when the same SparseMatrix object is
  /// passed again (a different object triggers a rebuild, not a stale read).
  bool reusePreconditioner = false;
  /// Structured-grid dimensions of the operator for the Multigrid
  /// preconditioner (0 = unknown; their product must equal the matrix size
  /// or Multigrid falls back to IC(0)).
  std::size_t gridNx = 0, gridNy = 0, gridNz = 0;
};

/// Scratch vectors and preconditioner state for solveConjugateGradient.
/// Passing the same workspace to repeated solves makes the CG internals
/// allocation-free after the first call.
class CgWorkspace {
 public:
  CgWorkspace();
  ~CgWorkspace();
  CgWorkspace(CgWorkspace&&) noexcept;
  CgWorkspace& operator=(CgWorkspace&&) noexcept;

  const IncompleteCholesky& preconditioner() const { return ic_; }
  /// Multigrid hierarchy of the last Multigrid solve (nullptr before one).
  const GeometricMultigrid* multigrid() const { return mg_.get(); }

 private:
  friend IterativeResult solveConjugateGradient(const SparseMatrix&,
                                                const Vector&, Vector&,
                                                const CgOptions&, CgWorkspace*);
  Vector r_, z_, p_, ap_, invDiag_;
  IncompleteCholesky ic_;
  std::unique_ptr<GeometricMultigrid> mg_;  ///< Created on first MG solve.
  /// Remembers an IC(0) breakdown so reusePreconditioner solves on the same
  /// frozen matrix go straight to Jacobi instead of re-failing every call.
  bool icFailed_ = false;
  bool mgFailed_ = false;  ///< Same, for a multigrid hierarchy that failed.
};

/// Preconditioned conjugate gradient for SPD systems.
/// \p x is used as the initial guess and holds the solution on return.
/// \p workspace (optional) carries scratch vectors and the IC(0) factor
/// across calls; without it the call allocates its own.
IterativeResult solveConjugateGradient(const SparseMatrix& a, const Vector& b,
                                       Vector& x, const CgOptions& options,
                                       CgWorkspace* workspace = nullptr);

/// Backward-compatible Jacobi-preconditioned overload.
IterativeResult solveConjugateGradient(const SparseMatrix& a, const Vector& b,
                                       Vector& x, double relTol = 1e-8,
                                       std::size_t maxIter = 10000);

/// Jacobi-preconditioned BiCGSTAB for general (possibly nonsymmetric)
/// systems; used as a fallback/validation path.
IterativeResult solveBiCgStab(const SparseMatrix& a, const Vector& b, Vector& x,
                              double relTol = 1e-8, std::size_t maxIter = 10000);

/// Thomas algorithm for tridiagonal systems (used by 1-D analytic
/// verification problems in the FEM tests).
/// \p lower has n-1 entries, \p diag n, \p upper n-1.
Vector solveTridiagonal(const Vector& lower, const Vector& diag,
                        const Vector& upper, const Vector& rhs);

}  // namespace nh::util
