#pragma once
/// \file scheme.hpp
/// Crossbar biasing schemes. The paper's experiments use the V/2 scheme:
/// the selected word line is driven to V and the selected bit line to 0;
/// every other line sits at V/2, so exactly the cells sharing a line with
/// the selected cell see a V/2 stress and all remaining cells see none.
/// The V/3 scheme (supported as a countermeasure ablation) reduces the
/// half-select stress to V/3 at the cost of stressing *every* cell.

#include <cstddef>

#include "util/matrix.hpp"
#include "xbar/array.hpp"

namespace nh::xbar {

enum class BiasScheme {
  Half,  ///< V/2 scheme (paper default).
  Third, ///< V/3 scheme.
};

/// Driver voltages for all lines during one operation.
struct LineBias {
  nh::util::Vector wordLine;  ///< Size rows [V].
  nh::util::Vector bitLine;   ///< Size cols [V].

  /// Ideal-driver cell voltage (word - bit) at (row, col).
  double cellVoltage(std::size_t row, std::size_t col) const {
    return wordLine[row] - bitLine[col];
  }
};

/// Line bias selecting cell (row, col) with signed amplitude \p voltage.
/// voltage > 0 applies the SET polarity to the selected cell, voltage < 0
/// the RESET polarity; half-selected cells see +-voltage/2 (or /3).
LineBias selectBias(BiasScheme scheme, std::size_t rows, std::size_t cols,
                    std::size_t selRow, std::size_t selCol, double voltage);

/// All-lines-idle bias (0 V everywhere).
LineBias idleBias(std::size_t rows, std::size_t cols);

/// Read bias: selected word line at vRead, selected bit line grounded,
/// unselected lines at vRead/2 (disturb-minimising read).
LineBias readBias(std::size_t rows, std::size_t cols, std::size_t selRow,
                  std::size_t selCol, double vRead);

/// Expected ideal-driver voltage map of a bias (rows x cols), for tests and
/// documentation dumps.
nh::util::Matrix cellVoltageMap(const LineBias& bias);

}  // namespace nh::xbar
