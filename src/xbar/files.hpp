#pragma once
/// \file files.hpp
/// The init and stimuli file formats of the simulation framework (paper
/// Sec. IV-B: "The stimuli file stores the explicit characteristics, i.e.
/// pulse length, duty cycle, and amplitude of each input pulse, while the
/// init file holds the initial state of every ReRAM cell.").
///
/// Init file: one cell per line --
///     <row> <col> LRS|HRS|<nDisc in m^-3>
///
/// Stimuli file: one driver programming per line --
///     WL|BL <index> <amplitude V> <length ns> <duty 0..1> <count> [delay ns]
/// '#' starts a comment in both formats.

#include <filesystem>
#include <string>
#include <vector>

#include "xbar/array.hpp"
#include "xbar/spicesim.hpp"

namespace nh::xbar {

/// Parsed init file: per-cell initial states.
struct InitEntry {
  std::size_t row = 0;
  std::size_t col = 0;
  double nDisc = 0.0;  ///< Explicit concentration, or +-1 sentinel below.
  bool isLrs = false;
  bool explicitConcentration = false;
};

/// Parse init text. Throws std::runtime_error with line context on errors.
std::vector<InitEntry> parseInit(const std::string& text);
std::vector<InitEntry> loadInit(const std::filesystem::path& path);
/// Apply parsed init entries to an array (bounds-checked).
void applyInit(CrossbarArray& array, const std::vector<InitEntry>& entries);
/// Serialise the array's current states into init-file text.
std::string dumpInit(const CrossbarArray& array);

/// Parse stimuli text into line stimuli for the SPICE engine.
std::vector<LineStimulus> parseStimuli(const std::string& text);
std::vector<LineStimulus> loadStimuli(const std::filesystem::path& path);
/// Validate stimuli against an array's dimensions; throws on out-of-range
/// line indices or non-physical pulse parameters.
void validateStimuli(const CrossbarArray& array,
                     const std::vector<LineStimulus>& stimuli);

}  // namespace nh::xbar
