#pragma once
/// \file vmm.hpp
/// Computing-in-memory readout: analog vector-matrix multiplication on the
/// crossbar (the neuromorphic-accelerator use case motivating the paper's
/// Sec. VI threat analysis). Input voltages drive the word lines, all bit
/// lines are virtually grounded, and the bit-line currents realise
/// I_c = sum_r G(r,c) * V_r.

#include "util/matrix.hpp"
#include "xbar/array.hpp"

namespace nh::xbar {

/// Options for the analog VMM readout.
struct VmmOptions {
  /// Largest input voltage magnitude [V]; inputs are expected within
  /// [-vMax, vMax]. Kept below the disturb threshold.
  double vMax = 0.2;
};

/// Bit-line currents [A] for word-line input voltages \p inputs (size rows).
/// Uses each cell's instantaneous conduction; does not disturb state.
nh::util::Vector vmmCurrents(const CrossbarArray& array,
                             const nh::util::Vector& inputs,
                             const VmmOptions& options = {});

/// Effective conductance matrix G(r,c) = I/V at \p probeVoltage [S].
nh::util::Matrix conductanceMatrix(const CrossbarArray& array,
                                   double probeVoltage = 0.2);

}  // namespace nh::xbar
