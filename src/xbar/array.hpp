#pragma once
/// \file array.hpp
/// The passive m x n memristive crossbar: a JART device at every word-line /
/// bit-line crossing, plus the electrical line parameters used by the
/// engines. This is the central data structure of the circuit-level
/// framework (paper Fig. 2c).

#include <cstddef>
#include <vector>

#include "jart/device.hpp"

namespace nh::xbar {

/// Cell coordinate (row = word line, col = bit line).
struct CellCoord {
  std::size_t row = 0;
  std::size_t col = 0;
  bool operator==(const CellCoord&) const = default;
};

/// Array construction parameters.
struct ArrayConfig {
  std::size_t rows = 5;
  std::size_t cols = 5;
  jart::Params cellParams = jart::Params::paperDefaults();
  double ambientK = 300.0;
  /// Metal line resistance per cell pitch [Ohm] (used by the SPICE engine's
  /// distributed line model).
  double lineResistancePerCell = 2.5;
  /// Driver output impedance per line [Ohm] (both engines).
  double driverResistance = 50.0;
  /// Line capacitance per cell pitch [F] (SPICE engine only).
  double lineCapacitancePerCell = 0.5e-15;
};

/// Logical bit convention: LRS = 1, HRS = 0 (stored datum).
enum class CellState { Hrs = 0, Lrs = 1 };

/// The crossbar array: owns the device states.
class CrossbarArray {
 public:
  explicit CrossbarArray(const ArrayConfig& config);

  const ArrayConfig& config() const { return config_; }
  std::size_t rows() const { return config_.rows; }
  std::size_t cols() const { return config_.cols; }
  std::size_t cellCount() const { return cells_.size(); }

  jart::JartDevice& cell(std::size_t row, std::size_t col);
  const jart::JartDevice& cell(std::size_t row, std::size_t col) const;
  jart::JartDevice& cell(const CellCoord& c) { return cell(c.row, c.col); }
  const jart::JartDevice& cell(const CellCoord& c) const { return cell(c.row, c.col); }

  /// Set every cell to a deep state.
  void fill(CellState state);
  /// Set one cell to a deep state.
  void setState(std::size_t row, std::size_t col, CellState state);
  /// Change the ambient temperature of every cell.
  void setAmbient(double ambientK);
  /// Reset all filament temperatures to ambient and clear crosstalk inputs
  /// (long idle period).
  void relaxAll();

  /// Classify a cell by its normalised state (>= 0.5 -> LRS). Cheap,
  /// non-disturbing; the detector in nh::core offers resistance-threshold
  /// classification on top.
  CellState stateOf(std::size_t row, std::size_t col) const;

  /// Per-cell normalised state / filament temperature snapshots (row-major
  /// matrices) for traces and dumps.
  nh::util::Matrix normalisedStates() const;
  nh::util::Matrix temperatures() const;
  nh::util::Matrix readResistances(double readVoltage = 0.2) const;

 private:
  ArrayConfig config_;
  std::vector<jart::JartDevice> cells_;
};

}  // namespace nh::xbar
