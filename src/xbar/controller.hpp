#pragma once
/// \file controller.hpp
/// The memory controller (paper Fig. 2c): generates and drives pulses for
/// word/bit lines, performs verified writes and disturb-minimising reads,
/// and exposes the hammer primitive the attack is built on. Operation
/// counters per line feed the hammer-count countermeasure in nh::core.

#include <cstdint>
#include <vector>

#include "xbar/fastsim.hpp"

namespace nh::xbar {

/// Controller timing/level parameters.
struct ControllerConfig {
  BiasScheme scheme = BiasScheme::Half;
  double vSet = 1.05;          ///< SET amplitude [V] (paper Sec. III).
  double vReset = -1.30;       ///< RESET amplitude [V].
  double vRead = 0.20;         ///< Read amplitude [V].
  double setPulseWidth = 100e-9;
  double resetPulseWidth = 10e-6;  ///< RESET is slower at this bias point.
  double readPulseWidth = 50e-9;
  double interPulseGap = 50e-9;
  /// Verified writes: re-pulse until the state crosses the verify level.
  std::size_t maxWriteAttempts = 8;
  /// Read thresholds on the normalised state for write-verify.
  double verifyLrsLevel = 0.9;
  double verifyHrsLevel = 0.1;
  /// Binary read decision: resistance at vRead below this reads as 1 (LRS).
  /// Set to the geometric middle of the detector window.
  double readThresholdOhms = 4.0e5;
};

/// Result of a read operation.
struct ReadResult {
  CellState state = CellState::Hrs;
  double resistance = 0.0;  ///< [Ohm] at vRead.
  double current = 0.0;     ///< [A] at vRead.
};

/// The controller drives one array through a FastEngine.
class MemoryController {
 public:
  MemoryController(FastEngine& engine, ControllerConfig config = {});

  const ControllerConfig& config() const { return config_; }
  FastEngine& engine() { return *engine_; }

  /// Verified write of a logical bit. Returns the number of programming
  /// pulses used; throws std::runtime_error when verification keeps failing.
  std::size_t writeBit(std::size_t row, std::size_t col, bool value);
  /// Write a whole row-major bit image (size rows*cols).
  void writeImage(const std::vector<bool>& bits);

  /// Disturb-minimising read (V/2 read bias held for readPulseWidth).
  ReadResult readBit(std::size_t row, std::size_t col);
  /// Read the whole array into a row-major bit vector.
  std::vector<bool> readImage();

  /// The hammer primitive: \p count SET-polarity pulses of \p width on cell
  /// (row, col) under the configured scheme with 50% duty cycle (period =
  /// 2*width) unless \p period > 0. Returns the pulses actually applied
  /// (== count unless \p stopCondition fired).
  std::size_t hammer(std::size_t row, std::size_t col, std::size_t count,
                     double width, double period = 0.0,
                     const FastEngine::PulseCallback& stopCondition = {});

  /// Per-word-line / per-bit-line activation counters (writes + hammers).
  const std::vector<std::uint64_t>& wordLineActivations() const {
    return wordLineActivations_;
  }
  const std::vector<std::uint64_t>& bitLineActivations() const {
    return bitLineActivations_;
  }
  void resetActivationCounters();

 private:
  FastEngine* engine_;
  ControllerConfig config_;
  std::vector<std::uint64_t> wordLineActivations_;
  std::vector<std::uint64_t> bitLineActivations_;
};

}  // namespace nh::xbar
