#include "xbar/crosstalk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/linsolve.hpp"

namespace nh::xbar {

namespace {

/// Canonical alpha tables extracted with nh::fem::extractAlpha from the
/// default 5x5 CrossbarLayout (see tools in bench/alpha_extraction) at three
/// electrode spacings. Offsets are (|dRow|, |dCol|); dRow = along a bit
/// line (cells share the top electrode), dCol = along a word line (cells
/// share the bottom electrode the filament sits on, hence the stronger
/// coupling). analytic() interpolates these log-linearly in spacing.
struct CanonicalTable {
  double spacing;      // [m]
  double rTh;          // [K/W]
  // alpha[dRow][dCol], dRow/dCol in 0..2, alpha[0][0] unused.
  double alpha[3][3];
};

constexpr CanonicalTable kCanonical[] = {
    {10e-9, 1.96e6, {{0.0, 0.4362, 0.3300},
                     {0.2994, 0.2810, 0.2588},
                     {0.2319, 0.2263, 0.2171}}},
    {50e-9, 1.93e6, {{0.0, 0.2572, 0.1311},
                     {0.1265, 0.1011, 0.0770},
                     {0.0788, 0.0690, 0.0577}}},
    {90e-9, 1.94e6, {{0.0, 0.1609, 0.0543},
                     {0.0761, 0.0479, 0.0274},
                     {0.0344, 0.0256, 0.0176}}},
};

}  // namespace

AlphaTable::AlphaTable(long long radius) : radius_(radius) {
  if (radius < 0) throw std::invalid_argument("AlphaTable: negative radius");
  const std::size_t side = static_cast<std::size_t>(2 * radius + 1);
  table_.assign(side * side, 0.0);
}

std::size_t AlphaTable::index(long long dRow, long long dCol) const {
  const std::size_t side = static_cast<std::size_t>(2 * radius_ + 1);
  return static_cast<std::size_t>(dRow + radius_) * side +
         static_cast<std::size_t>(dCol + radius_);
}

double AlphaTable::at(long long dRow, long long dCol) const {
  if (dRow == 0 && dCol == 0) return 0.0;
  if (std::llabs(dRow) > radius_ || std::llabs(dCol) > radius_) return 0.0;
  return table_[index(dRow, dCol)];
}

void AlphaTable::set(long long dRow, long long dCol, double value) {
  if (std::llabs(dRow) > radius_ || std::llabs(dCol) > radius_) {
    throw std::out_of_range("AlphaTable::set: offset outside table");
  }
  if (dRow == 0 && dCol == 0) {
    throw std::invalid_argument("AlphaTable::set: (0,0) is the cell itself");
  }
  table_[index(dRow, dCol)] = value;
}

void AlphaTable::truncate(long long maxDistance) {
  for (long long dr = -radius_; dr <= radius_; ++dr) {
    for (long long dc = -radius_; dc <= radius_; ++dc) {
      if (std::max(std::llabs(dr), std::llabs(dc)) > maxDistance &&
          !(dr == 0 && dc == 0)) {
        table_[index(dr, dc)] = 0.0;
      }
    }
  }
}

double AlphaTable::totalCoupling() const {
  double acc = 0.0;
  for (const double a : table_) acc += a;
  return acc;
}

AlphaTable AlphaTable::fromExtraction(const fem::AlphaResult& extraction) {
  const auto& alpha = extraction.alpha;
  const long long rows = static_cast<long long>(alpha.rows());
  const long long cols = static_cast<long long>(alpha.cols());
  const long long sr = static_cast<long long>(extraction.selectedRow);
  const long long sc = static_cast<long long>(extraction.selectedCol);
  const long long radius =
      std::max({sr, rows - 1 - sr, sc, cols - 1 - sc});

  AlphaTable table(radius);
  table.rTh_ = extraction.rTh;
  for (long long r = 0; r < rows; ++r) {
    for (long long c = 0; c < cols; ++c) {
      if (r == sr && c == sc) continue;
      table.table_[table.index(r - sr, c - sc)] = alpha(static_cast<std::size_t>(r),
                                                        static_cast<std::size_t>(c));
    }
  }
  return table;
}

AlphaTable AlphaTable::analytic(double spacingMeters) {
  if (!(spacingMeters > 0.0)) {
    throw std::invalid_argument("AlphaTable::analytic: spacing must be > 0");
  }
  constexpr std::size_t kCount = sizeof(kCanonical) / sizeof(kCanonical[0]);

  // Log-linear interpolation between the canonical spacings; clamped
  // log-linear extrapolation outside.
  const auto valueAt = [&](auto member) {
    const double s = std::clamp(spacingMeters, kCanonical[0].spacing,
                                kCanonical[kCount - 1].spacing);
    std::size_t hi = 1;
    while (hi + 1 < kCount && kCanonical[hi].spacing < s) ++hi;
    const auto& a = kCanonical[hi - 1];
    const auto& b = kCanonical[hi];
    const double t = (s - a.spacing) / (b.spacing - a.spacing);
    const double va = member(a);
    const double vb = member(b);
    return va * std::pow(vb / va, t);  // log-linear in the value
  };

  AlphaTable table(2);
  table.rTh_ = valueAt([](const CanonicalTable& t) { return t.rTh; });
  for (long long dr = -2; dr <= 2; ++dr) {
    for (long long dc = -2; dc <= 2; ++dc) {
      if (dr == 0 && dc == 0) continue;
      const std::size_t ar = static_cast<std::size_t>(std::llabs(dr));
      const std::size_t ac = static_cast<std::size_t>(std::llabs(dc));
      table.table_[table.index(dr, dc)] =
          valueAt([&](const CanonicalTable& t) { return t.alpha[ar][ac]; });
    }
  }
  return table;
}

CrosstalkHub::CrosstalkHub(std::size_t rows, std::size_t cols, AlphaTable table)
    : rows_(rows), cols_(cols), table_(std::move(table)) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("CrosstalkHub: empty array");
  }
}

nh::util::Matrix CrosstalkHub::inputTemperatures(const nh::util::Matrix& excess) const {
  if (excess.rows() != rows_ || excess.cols() != cols_) {
    throw std::invalid_argument("CrosstalkHub: excess shape mismatch");
  }
  // Eq. 5 as linear superposition of every cell's *self*-heating: the alpha
  // values were extracted with a single heated cell, so the coupled field of
  // many sources is the sum of the single-source solutions. (Feeding back
  // total temperatures instead would double-count and diverges for dense
  // spacings where the coupling sum exceeds 1.)
  nh::util::Matrix tin(rows_, cols_, 0.0);
  const long long radius = table_.radius();
  for (long long r = 0; r < static_cast<long long>(rows_); ++r) {
    for (long long c = 0; c < static_cast<long long>(cols_); ++c) {
      double acc = 0.0;
      for (long long dr = -radius; dr <= radius; ++dr) {
        const long long jr = r + dr;
        if (jr < 0 || jr >= static_cast<long long>(rows_)) continue;
        for (long long dc = -radius; dc <= radius; ++dc) {
          const long long jc = c + dc;
          if (jc < 0 || jc >= static_cast<long long>(cols_)) continue;
          const double a = table_.at(dr, dc);
          if (a == 0.0) continue;
          acc += a * excess(static_cast<std::size_t>(jr), static_cast<std::size_t>(jc));
        }
      }
      tin(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = acc;
    }
  }
  return tin;
}

nh::util::Matrix CrosstalkHub::solveCoupledExcess(const nh::util::Matrix& cellPower,
                                                  double rth) const {
  if (cellPower.rows() != rows_ || cellPower.cols() != cols_) {
    throw std::invalid_argument("CrosstalkHub: power shape mismatch");
  }
  // Superposition: excess_i = rth*P_i + sum_j alpha_ij * (rth*P_j).
  nh::util::Matrix self(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      self(r, c) = rth * cellPower(r, c);
    }
  }
  const nh::util::Matrix tin = inputTemperatures(self);
  nh::util::Matrix total(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      total(r, c) = self(r, c) + tin(r, c);
    }
  }
  return total;
}

}  // namespace nh::xbar
