#pragma once
/// \file fastsim.hpp
/// Fast quasi-static crossbar engine. Pulse lengths (10-100 ns) are much
/// longer than both the electrical line time constants (~ps) and the
/// filament thermal time constant (~ns), so within a pulse the circuit is
/// solved quasi-statically: a small Newton solve of the line network, the
/// crosstalk hub update (Eq. 5), then state/temperature integration inside
/// each compact model. A deterministic pulse-batching accelerator with
/// bounded state-drift per batch makes the 10^5..10^6-pulse sweeps of
/// Fig. 3 tractable; tests verify it against the unbatched engine and the
/// full SPICE transient.

#include <cstddef>
#include <functional>

#include "util/linsolve.hpp"
#include "util/matrix.hpp"
#include "xbar/array.hpp"
#include "xbar/crosstalk.hpp"
#include "xbar/scheme.hpp"

namespace nh::xbar {

struct FastEngineOptions {
  /// Crosstalk-hub refresh points per pulse.
  std::size_t substepsPerPulse = 4;
  /// Solve the resistive line network (driver impedance) instead of
  /// assuming ideal drivers.
  bool solveLineNetwork = true;
  /// Simulate the idle gap between pulses (temperature relaxation).
  bool relaxBetweenPulses = true;
  /// Pulse-batching accelerator (see applyPulseTrain).
  bool enableBatching = true;
  /// Max fraction of the N_disc window any cell may drift per batch.
  double batchDriftLimit = 0.002;
  /// Hard cap on the batch size.
  std::size_t maxBatch = 1024;
  /// Newton controls for the line-network solve.
  double newtonTol = 1e-9;
  std::size_t maxNewtonIterations = 60;
  /// Solve each Newton update through the Schur complement on the bit-line
  /// block. The line-network Jacobian's diagonal blocks are diagonal (every
  /// word line couples to every bit line but never to another word line), so
  /// eliminating the word-line block costs O(rows*cols^2) instead of the
  /// O((rows+cols)^3) dense factorisation. False keeps the seed dense solve
  /// (equivalence-test reference).
  bool useSchurSolve = true;
  /// Which Schur backend carries the solve (only meaningful with
  /// useSchurSolve). SeedDense is the original dense-complement assembly —
  /// byte-identical to the seed at any size. Banded routes the diagonal
  /// line blocks through the Thomas factorisation (same dense complement,
  /// cheaper A1 handling); Iterative runs the matrix-free Jacobi-CG
  /// complement, which is what takes 1024x1024 arrays past the
  /// O(rows*cols^2) dense-assembly wall. Auto keeps the seed path below
  /// schurIterativeMinCols bit lines (bit-identical where the paper's
  /// figures live) and switches to Iterative above it.
  enum class SchurMode { SeedDense, Banded, Iterative, Auto };
  SchurMode schurMode = SchurMode::Auto;
  /// Auto crossover: bit-line count at which the solve goes iterative.
  std::size_t schurIterativeMinCols = 128;

  /// Exact comparison (study-dedup cache key component).
  bool operator==(const FastEngineOptions&) const = default;
};

/// Result of an applyPulseTrain run.
struct PulseTrainResult {
  std::size_t pulsesApplied = 0;     ///< Includes batched (extrapolated) pulses.
  std::size_t pulsesSimulated = 0;   ///< Pulses integrated in full detail.
  bool stoppedEarly = false;         ///< Callback requested stop.
};

/// Quasi-static simulation engine bound to one array.
class FastEngine {
 public:
  /// \p table provides the crosstalk alphas; when the table carries a FEM
  /// R_th it overrides the compact-model default for every cell's Eq. 6,
  /// mirroring the paper's COMSOL -> Virtuoso parameter hand-off.
  FastEngine(CrossbarArray& array, AlphaTable table,
             FastEngineOptions options = {});

  CrossbarArray& array() { return *array_; }
  const CrossbarArray& array() const { return *array_; }
  const CrosstalkHub& hub() const { return hub_; }
  const FastEngineOptions& options() const { return options_; }
  /// Accumulated simulated time [s].
  double time() const { return time_; }

  /// Hold \p bias for \p duration (no pulse shape; used for reads and for
  /// the idle gap).
  void applyBias(const LineBias& bias, double duration);

  /// One rectangular pulse: \p bias for \p width, then idle for \p gap.
  void applyPulse(const LineBias& bias, double width, double gap);

  /// Called after every applied pulse with the 1-based cumulative pulse
  /// count; return true to stop the train (e.g. a bit-flip was detected).
  using PulseCallback = std::function<bool(std::size_t pulseIndex)>;

  /// Apply \p count identical pulses. With batching enabled, stretches of
  /// near-identical pulses are extrapolated: one pulse is integrated in
  /// detail, the per-cell state delta is replayed M-1 times with M chosen so
  /// no cell drifts more than batchDriftLimit of its window per batch. The
  /// callback fires after every detailed pulse and after every batch.
  PulseTrainResult applyPulseTrain(const LineBias& bias, double width, double gap,
                                   std::size_t count,
                                   const PulseCallback& callback = {});

  /// Line node voltages of the last network solve (diagnostics/tests):
  /// word lines then bit lines.
  const nh::util::Vector& lastLineVoltages() const { return lineVoltages_; }
  /// Total Newton iterations spent in line-network solves.
  std::size_t newtonIterationsTotal() const { return newtonTotal_; }

  /// Energy dissipated in the array since construction / resetEnergy() [J].
  /// Batched pulses contribute their extrapolated share, so the value is
  /// meaningful for attack-cost accounting (see bench/attack_energy).
  double totalEnergy() const { return totalEnergy_; }
  /// Per-cell energy breakdown [J] (rows x cols).
  const nh::util::Matrix& energyByCell() const { return energyByCell_; }
  void resetEnergy();

 private:
  /// One quasi-static substep of length h under a fixed bias.
  void step(const LineBias& bias, double h);
  /// Update every device's crosstalk input from the hub.
  void refreshCrosstalk();
  /// Solve the line network; fills lineVoltages_.
  void solveNetwork(const LineBias& bias);
  /// Newton update via the bit-line Schur complement; fills delta_.
  void solveNetworkSchur(std::size_t rows, std::size_t cols);
  /// Newton update via the seed dense factorisation; fills delta_.
  void solveNetworkDense(std::size_t rows, std::size_t cols);

  CrossbarArray* array_;
  CrosstalkHub hub_;
  FastEngineOptions options_;
  nh::util::Vector lineVoltages_;
  double time_ = 0.0;
  std::size_t newtonTotal_ = 0;
  double totalEnergy_ = 0.0;
  nh::util::Matrix energyByCell_;

  // Line-network solve workspace, persistent across substeps and pulses so
  // the million-pulse sweeps never reallocate it. gMat_/dRow_/dCol_ hold the
  // Jacobian in factored block form [diag(dRow_), -G; -G^T, diag(dCol_)].
  nh::util::Matrix gMat_;       ///< Device small-signal conductances (rows x cols).
  nh::util::Vector dRow_;       ///< Word-line block diagonal.
  nh::util::Vector dCol_;       ///< Bit-line block diagonal.
  nh::util::Vector residual_;   ///< KCL residual (rows + cols).
  nh::util::Vector delta_;      ///< Newton update (rows + cols).
  nh::util::SchurComplementSolver schurSolver_;
  nh::util::Matrix jacobian_;   ///< Dense path only (rows+cols square).
  nh::util::LuFactorization lu_;
};

}  // namespace nh::xbar
