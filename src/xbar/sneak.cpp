#include "xbar/sneak.hpp"

#include <stdexcept>

#include "spice/analysis.hpp"
#include "spice/elements.hpp"

namespace nh::xbar {

namespace {

/// Build the single-node-per-line read circuit: memristors between line
/// nodes, drivers (with source impedance) only on the driven lines. The
/// engine's gmin keeps floating lines defined.
struct ReadCircuit {
  nh::spice::Circuit circuit;
  nh::spice::VoltageSource* bitDriver = nullptr;  ///< Selected BL at 0 V.
  std::vector<nh::spice::NodeId> wordNodes;
  std::vector<nh::spice::NodeId> bitNodes;
};

ReadCircuit buildReadCircuit(const CrossbarArray& array, std::size_t selRow,
                             std::size_t selCol, double vRead, ReadScheme scheme) {
  ReadCircuit rc;
  auto& ckt = rc.circuit;
  const double rDrv = std::max(array.config().driverResistance, 1e-3);

  for (std::size_t r = 0; r < array.rows(); ++r) {
    rc.wordNodes.push_back(ckt.node("wl" + std::to_string(r)));
  }
  for (std::size_t c = 0; c < array.cols(); ++c) {
    rc.bitNodes.push_back(ckt.node("bl" + std::to_string(c)));
  }

  const auto drive = [&](const std::string& name, nh::spice::NodeId node,
                         double level) {
    const auto src = ckt.node(name + "_src");
    auto* source = ckt.emplace<nh::spice::VoltageSource>(name, src, ckt.ground(),
                                                         level);
    ckt.emplace<nh::spice::Resistor>(name + "_rdrv", src, node, rDrv);
    return source;
  };

  drive("vwl_sel", rc.wordNodes[selRow], vRead);
  rc.bitDriver = drive("vbl_sel", rc.bitNodes[selCol], 0.0);
  if (scheme == ReadScheme::HalfBias) {
    for (std::size_t r = 0; r < array.rows(); ++r) {
      if (r != selRow) drive("vwl" + std::to_string(r), rc.wordNodes[r], vRead / 2);
    }
    for (std::size_t c = 0; c < array.cols(); ++c) {
      if (c != selCol) drive("vbl" + std::to_string(c), rc.bitNodes[c], vRead / 2);
    }
  }

  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      // const_cast: the Memristor element only mutates state via
      // acceptStep, which a DC solve never calls.
      auto* model = const_cast<jart::JartDevice*>(&array.cell(r, c));
      ckt.emplace<nh::spice::Memristor>(
          "x" + std::to_string(r) + "_" + std::to_string(c), rc.wordNodes[r],
          rc.bitNodes[c], model);
    }
  }
  return rc;
}

}  // namespace

SneakAnalysis analyzeSneak(const CrossbarArray& array, std::size_t selRow,
                           std::size_t selCol, double vRead, ReadScheme scheme) {
  if (selRow >= array.rows() || selCol >= array.cols()) {
    throw std::out_of_range("analyzeSneak: selected cell out of range");
  }
  if (vRead == 0.0) throw std::invalid_argument("analyzeSneak: vRead must be non-zero");

  ReadCircuit rc = buildReadCircuit(array, selRow, selCol, vRead, scheme);
  const auto op = nh::spice::solveDc(rc.circuit);
  if (!op.converged) throw std::runtime_error("analyzeSneak: DC solve failed");

  const auto nodeV = [&](nh::spice::NodeId id) {
    return id == 0 ? 0.0 : op.x[id - 1];
  };

  SneakAnalysis out;
  // Bit-line driver current: positive branch current flows out of the
  // source's + terminal; current INTO the 0 V driver is the read current.
  out.bitLineCurrent = rc.bitDriver->branchCurrent(op.x);
  const double vCell = nodeV(rc.wordNodes[selRow]) - nodeV(rc.bitNodes[selCol]);
  out.selectedCurrent = array.cell(selRow, selCol).current(vCell);
  out.sneakCurrent = out.bitLineCurrent - out.selectedCurrent;

  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      if (r == selRow && c == selCol) continue;
      const double v = nodeV(rc.wordNodes[r]) - nodeV(rc.bitNodes[c]);
      out.halfSelectPower += std::abs(v * array.cell(r, c).current(v));
      out.maxUnselectedVoltage = std::max(out.maxUnselectedVoltage, std::abs(v));
    }
  }
  return out;
}

ReadMargin worstCaseReadMargin(const ArrayConfig& config, double vRead,
                               ReadScheme scheme) {
  ReadMargin out;
  const std::size_t selRow = config.rows / 2;
  const std::size_t selCol = config.cols / 2;

  CrossbarArray array(config);
  array.fill(CellState::Lrs);  // maximum sneak background

  array.setState(selRow, selCol, CellState::Lrs);
  out.iSelectedLrs = analyzeSneak(array, selRow, selCol, vRead, scheme).bitLineCurrent;
  array.setState(selRow, selCol, CellState::Hrs);
  out.iSelectedHrs = analyzeSneak(array, selRow, selCol, vRead, scheme).bitLineCurrent;
  if (out.iSelectedLrs != 0.0) {
    out.margin = (out.iSelectedLrs - out.iSelectedHrs) / out.iSelectedLrs;
  }
  return out;
}

}  // namespace nh::xbar
