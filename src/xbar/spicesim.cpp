#include "xbar/spicesim.hpp"

#include <stdexcept>

namespace nh::xbar {

using nh::spice::Capacitor;
using nh::spice::DcWaveform;
using nh::spice::Memristor;
using nh::spice::PulseWaveform;
using nh::spice::Resistor;
using nh::spice::VoltageSource;

SpiceCrossbar::SpiceCrossbar(CrossbarArray& array, AlphaTable table,
                             SpiceEngineOptions options)
    : array_(&array),
      hub_(array.rows(), array.cols(), std::move(table)),
      options_(options) {
  buildNetlist();
}

std::string SpiceCrossbar::wordLineNode(std::size_t row, std::size_t segment) const {
  return "wl" + std::to_string(row) + "_" + std::to_string(segment);
}

std::string SpiceCrossbar::bitLineNode(std::size_t col, std::size_t segment) const {
  return "bl" + std::to_string(col) + "_" + std::to_string(segment);
}

void SpiceCrossbar::buildNetlist() {
  const std::size_t rows = array_->rows();
  const std::size_t cols = array_->cols();
  const auto& cfg = array_->config();

  // Word line r: driver -> rDrv -> wl{r}_0 -> rSeg -> wl{r}_1 -> ... The
  // memristor of cell (r, c) connects wl{r}_c to bl{c}_r; the bit line runs
  // through its own segment chain to a grounded driver at the top.
  for (std::size_t r = 0; r < rows; ++r) {
    const auto src = "wsrc" + std::to_string(r);
    auto* driver = circuit_.emplace<VoltageSource>(
        "Vw" + std::to_string(r), circuit_.node(src), circuit_.ground(),
        std::make_unique<DcWaveform>(0.0));
    drivers_.push_back(driver);
    circuit_.emplace<Resistor>("Rwdrv" + std::to_string(r), circuit_.node(src),
                               circuit_.node(wordLineNode(r, 0)),
                               cfg.driverResistance > 0 ? cfg.driverResistance : 1e-3);
    for (std::size_t c = 0; c + 1 < cols; ++c) {
      circuit_.emplace<Resistor>(
          "Rw" + std::to_string(r) + "_" + std::to_string(c),
          circuit_.node(wordLineNode(r, c)), circuit_.node(wordLineNode(r, c + 1)),
          cfg.lineResistancePerCell > 0 ? cfg.lineResistancePerCell : 1e-3);
    }
    if (cfg.lineCapacitancePerCell > 0.0) {
      for (std::size_t c = 0; c < cols; ++c) {
        circuit_.emplace<Capacitor>(
            "Cw" + std::to_string(r) + "_" + std::to_string(c),
            circuit_.node(wordLineNode(r, c)), circuit_.ground(),
            cfg.lineCapacitancePerCell);
      }
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    const auto src = "bsrc" + std::to_string(c);
    auto* driver = circuit_.emplace<VoltageSource>(
        "Vb" + std::to_string(c), circuit_.node(src), circuit_.ground(),
        std::make_unique<DcWaveform>(0.0));
    drivers_.push_back(driver);
    circuit_.emplace<Resistor>("Rbdrv" + std::to_string(c), circuit_.node(src),
                               circuit_.node(bitLineNode(c, 0)),
                               cfg.driverResistance > 0 ? cfg.driverResistance : 1e-3);
    for (std::size_t r = 0; r + 1 < rows; ++r) {
      circuit_.emplace<Resistor>(
          "Rb" + std::to_string(c) + "_" + std::to_string(r),
          circuit_.node(bitLineNode(c, r)), circuit_.node(bitLineNode(c, r + 1)),
          cfg.lineResistancePerCell > 0 ? cfg.lineResistancePerCell : 1e-3);
    }
    if (cfg.lineCapacitancePerCell > 0.0) {
      for (std::size_t r = 0; r < rows; ++r) {
        circuit_.emplace<Capacitor>(
            "Cb" + std::to_string(c) + "_" + std::to_string(r),
            circuit_.node(bitLineNode(c, r)), circuit_.ground(),
            cfg.lineCapacitancePerCell);
      }
    }
  }
  memristors_.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      auto* m = circuit_.emplace<Memristor>(
          "X" + std::to_string(r) + "_" + std::to_string(c),
          circuit_.node(wordLineNode(r, c)), circuit_.node(bitLineNode(c, r)),
          &array_->cell(r, c));
      memristors_.push_back(m);
    }
  }
}

void SpiceCrossbar::programDrivers(const LineBias& resting,
                                   const std::vector<LineStimulus>& stimuli) {
  const std::size_t rows = array_->rows();
  const std::size_t cols = array_->cols();
  if (resting.wordLine.size() != rows || resting.bitLine.size() != cols) {
    throw std::invalid_argument("programDrivers: resting bias shape mismatch");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    drivers_[r]->setWaveform(std::make_unique<DcWaveform>(resting.wordLine[r]));
  }
  for (std::size_t c = 0; c < cols; ++c) {
    drivers_[rows + c]->setWaveform(std::make_unique<DcWaveform>(resting.bitLine[c]));
  }
  for (const auto& stim : stimuli) {
    const std::size_t slot = stim.isWordLine ? stim.index : rows + stim.index;
    if ((stim.isWordLine && stim.index >= rows) ||
        (!stim.isWordLine && stim.index >= cols)) {
      throw std::out_of_range("programDrivers: stimulus line out of range");
    }
    drivers_[slot]->setWaveform(std::make_unique<PulseWaveform>(stim.pulse));
  }
}

void SpiceCrossbar::programHammer(std::size_t row, std::size_t col, double vSet,
                                  double width, double period, long long count) {
  const LineBias resting =
      selectBias(BiasScheme::Half, array_->rows(), array_->cols(), row, col, vSet);
  // The selected word line pulses between the half-select level and V; the
  // selected bit line stays at 0 (already in `resting`).
  nh::spice::PulseSpec pulse;
  pulse.base = vSet / 2.0;
  pulse.amplitude = vSet;
  pulse.delay = 0.0;
  pulse.rise = 0.5e-9;
  pulse.fall = 0.5e-9;
  pulse.width = width;
  pulse.period = period;
  pulse.count = count;
  programDrivers(resting, {{true, row, pulse}});
}

void SpiceCrossbar::refreshCrosstalk() {
  const std::size_t rows = array_->rows();
  const std::size_t cols = array_->cols();
  nh::util::Matrix selfExcess(rows, cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      selfExcess(r, c) = array_->cell(r, c).selfExcessTemperature();
    }
  }
  const nh::util::Matrix tin = hub_.inputTemperatures(selfExcess);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      array_->cell(r, c).setCrosstalk(tin(r, c));
    }
  }
}

nh::spice::TransientResult SpiceCrossbar::run(double tStop) {
  nh::spice::TransientOptions opt;
  opt.tStop = tStop;
  opt.dtInitial = options_.dtInitial;
  opt.dtMax = options_.dtMax;
  opt.newton = options_.newton;
  opt.onStepAccepted = [this](const nh::util::Vector&, double, double) {
    refreshCrosstalk();
  };

  std::vector<nh::spice::Probe> probes;
  if (options_.traceCells) {
    for (std::size_t r = 0; r < array_->rows(); ++r) {
      for (std::size_t c = 0; c < array_->cols(); ++c) {
        const auto& device = array_->cell(r, c);
        probes.push_back({"x(" + std::to_string(r) + "," + std::to_string(c) + ")",
                          [&device](const nh::util::Vector&, double) {
                            return device.normalisedState();
                          }});
        probes.push_back({"T(" + std::to_string(r) + "," + std::to_string(c) + ")",
                          [&device](const nh::util::Vector&, double) {
                            return device.temperature();
                          }});
      }
    }
  }

  auto result = nh::spice::runTransient(circuit_, opt, probes);
  time_ += result.time.empty() ? 0.0 : result.time.back();
  return result;
}

}  // namespace nh::xbar
