#include "xbar/scheme.hpp"

#include <cmath>
#include <stdexcept>

namespace nh::xbar {

LineBias selectBias(BiasScheme scheme, std::size_t rows, std::size_t cols,
                    std::size_t selRow, std::size_t selCol, double voltage) {
  if (selRow >= rows || selCol >= cols) {
    throw std::out_of_range("selectBias: selected cell out of range");
  }
  const double mag = std::fabs(voltage);
  const bool set = voltage >= 0.0;
  LineBias bias;
  switch (scheme) {
    case BiasScheme::Half:
      bias.wordLine.assign(rows, mag / 2.0);
      bias.bitLine.assign(cols, mag / 2.0);
      break;
    case BiasScheme::Third:
      // SET: unselected word lines at V/3, unselected bit lines at 2V/3
      // (selected cell V, half-selected V/3, unselected -V/3). RESET mirrors
      // the assignment so half-selected cells see -V/3.
      bias.wordLine.assign(rows, set ? mag / 3.0 : 2.0 * mag / 3.0);
      bias.bitLine.assign(cols, set ? 2.0 * mag / 3.0 : mag / 3.0);
      break;
  }
  if (set) {
    bias.wordLine[selRow] = mag;
    bias.bitLine[selCol] = 0.0;
  } else {
    // RESET polarity: swap the roles so the selected cell sees -|V|.
    bias.wordLine[selRow] = 0.0;
    bias.bitLine[selCol] = mag;
  }
  return bias;
}

LineBias idleBias(std::size_t rows, std::size_t cols) {
  LineBias bias;
  bias.wordLine.assign(rows, 0.0);
  bias.bitLine.assign(cols, 0.0);
  return bias;
}

LineBias readBias(std::size_t rows, std::size_t cols, std::size_t selRow,
                  std::size_t selCol, double vRead) {
  return selectBias(BiasScheme::Half, rows, cols, selRow, selCol, vRead);
}

nh::util::Matrix cellVoltageMap(const LineBias& bias) {
  nh::util::Matrix out(bias.wordLine.size(), bias.bitLine.size(), 0.0);
  for (std::size_t r = 0; r < bias.wordLine.size(); ++r) {
    for (std::size_t c = 0; c < bias.bitLine.size(); ++c) {
      out(r, c) = bias.cellVoltage(r, c);
    }
  }
  return out;
}

}  // namespace nh::xbar
