#include "xbar/fastsim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/cancellation.hpp"
#include "util/linsolve.hpp"

namespace nh::xbar {

FastEngine::FastEngine(CrossbarArray& array, AlphaTable table,
                       FastEngineOptions options)
    : array_(&array),
      hub_(array.rows(), array.cols(), std::move(table)),
      options_(options) {
  if (options_.substepsPerPulse == 0) {
    throw std::invalid_argument("FastEngine: substepsPerPulse must be >= 1");
  }
  if (!(options_.batchDriftLimit > 0.0)) {
    throw std::invalid_argument("FastEngine: batchDriftLimit must be > 0");
  }
  // FEM-extracted R_th overrides the compact-model default (paper hand-off).
  // JartDevice reads R_th from its immutable Params, so the override happens
  // at array construction time via config; here we only validate coherence.
  lineVoltages_.assign(array.rows() + array.cols(), 0.0);
  energyByCell_.resize(array.rows(), array.cols(), 0.0);
}

void FastEngine::resetEnergy() {
  totalEnergy_ = 0.0;
  energyByCell_.fill(0.0);
}

void FastEngine::refreshCrosstalk() {
  const std::size_t rows = array_->rows();
  const std::size_t cols = array_->cols();
  nh::util::Matrix selfExcess(rows, cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      selfExcess(r, c) = array_->cell(r, c).selfExcessTemperature();
    }
  }
  const nh::util::Matrix tin = hub_.inputTemperatures(selfExcess);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      array_->cell(r, c).setCrosstalk(tin(r, c));
    }
  }
}

void FastEngine::solveNetwork(const LineBias& bias) {
  const std::size_t rows = array_->rows();
  const std::size_t cols = array_->cols();
  const std::size_t n = rows + cols;
  const double rDrv = array_->config().driverResistance;

  if (!options_.solveLineNetwork || rDrv <= 0.0) {
    for (std::size_t r = 0; r < rows; ++r) lineVoltages_[r] = bias.wordLine[r];
    for (std::size_t c = 0; c < cols; ++c) lineVoltages_[rows + c] = bias.bitLine[c];
    return;
  }

  // Warm start from the ideal bias (previous solution can belong to a very
  // different bias, e.g. after a scheme change).
  for (std::size_t r = 0; r < rows; ++r) lineVoltages_[r] = bias.wordLine[r];
  for (std::size_t c = 0; c < cols; ++c) lineVoltages_[rows + c] = bias.bitLine[c];

  const double gDrv = 1.0 / rDrv;
  if (gMat_.rows() != rows || gMat_.cols() != cols) gMat_.resize(rows, cols, 0.0);
  dRow_.resize(rows);
  dCol_.resize(cols);
  residual_.assign(n, 0.0);
  delta_.resize(n);

  for (std::size_t iter = 0; iter < options_.maxNewtonIterations; ++iter) {
    // Evaluate the Jacobian in block form: the word/bit diagonal blocks are
    // diagonal (dRow_/dCol_) and the coupling block is the dense device
    // conductance matrix gMat_.
    std::fill(residual_.begin(), residual_.end(), 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
      residual_[r] += gDrv * (lineVoltages_[r] - bias.wordLine[r]);
      dRow_[r] = gDrv;
    }
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t bc = rows + c;
      residual_[bc] += gDrv * (lineVoltages_[bc] - bias.bitLine[c]);
      dCol_[c] = gDrv;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const std::size_t bc = rows + c;
        const auto& device = array_->cell(r, c);
        const double v = lineVoltages_[r] - lineVoltages_[bc];
        const double i = device.current(v);
        double g = device.conductance(v);
        if (!(g > 0.0)) g = 1e-12;
        residual_[r] += i;
        residual_[bc] -= i;
        gMat_(r, c) = g;
        dRow_[r] += g;
        dCol_[c] += g;
      }
    }

    if (options_.useSchurSolve) {
      solveNetworkSchur(rows, cols);
    } else {
      solveNetworkDense(rows, cols);
    }

    double maxStep = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = std::clamp(delta_[i], -0.5, 0.5);
      lineVoltages_[i] -= d;
      maxStep = std::max(maxStep, std::fabs(d));
    }
    ++newtonTotal_;
    // NaN/Inf guard: std::clamp passes NaN through, so a poisoned solve
    // would otherwise iterate to the cap and leave NaN line voltages behind.
    if (!std::isfinite(maxStep)) {
      throw nh::util::SolverError("fastsim.newton",
                                  "non-finite update in line-network solve",
                                  iter + 1, maxStep);
    }
    if (maxStep < options_.newtonTol) break;
  }
}

void FastEngine::solveNetworkSchur(std::size_t rows, std::size_t cols) {
  // Word lines couple only to bit lines: the Jacobian is the bipartite block
  // system SchurComplementSolver handles in O(rows*cols^2) instead of the
  // O((rows+cols)^3) dense factorisation. Above the Auto crossover the
  // matrix-free CG complement drops that to O(rows*cols) per iteration.
  (void)rows;
  using SchurMode = FastEngineOptions::SchurMode;
  SchurMode mode = options_.schurMode;
  if (mode == SchurMode::Auto) {
    mode = cols >= options_.schurIterativeMinCols ? SchurMode::Iterative
                                                  : SchurMode::SeedDense;
  }
  bool ok = false;
  if (mode == SchurMode::SeedDense) {
    ok = schurSolver_.solve(dRow_, dCol_, gMat_, residual_, delta_);
  } else {
    schurSolver_.options().mode = mode == SchurMode::Iterative
                                      ? nh::util::SchurOptions::Mode::Iterative
                                      : nh::util::SchurOptions::Mode::Dense;
    ok = schurSolver_.solveBanded(nh::util::TridiagonalView::diagonal(dRow_),
                                  nh::util::TridiagonalView::diagonal(dCol_),
                                  gMat_, residual_, delta_);
  }
  if (!ok) {
    // The iterative path carries CG diagnostics; the dense paths report a
    // plain singular factorisation (iterations/residual stay zero).
    const nh::util::IterativeResult& cg = schurSolver_.lastIterative();
    throw nh::util::SolverError(
        "fastsim.schur",
        cg.iterations > 0 ? "line-network Schur CG did not converge"
                          : "singular line-network Schur complement",
        cg.iterations, cg.residualNorm);
  }
}

void FastEngine::solveNetworkDense(std::size_t rows, std::size_t cols) {
  // Seed-equivalent dense path: assemble the full Jacobian and factor it.
  const std::size_t n = rows + cols;
  if (jacobian_.rows() != n || jacobian_.cols() != n) jacobian_.resize(n, n, 0.0);
  jacobian_.fill(0.0);
  for (std::size_t r = 0; r < rows; ++r) jacobian_(r, r) = dRow_[r];
  for (std::size_t c = 0; c < cols; ++c) jacobian_(rows + c, rows + c) = dCol_[c];
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t bc = rows + c;
      jacobian_(r, bc) = -gMat_(r, c);
      jacobian_(bc, r) = -gMat_(r, c);
    }
  }
  if (!lu_.refactor(jacobian_)) {
    throw nh::util::SolverError("fastsim.dense",
                                "singular line-network Jacobian");
  }
  std::copy(residual_.begin(), residual_.end(), delta_.begin());
  lu_.solveInPlace(delta_);
}

void FastEngine::step(const LineBias& bias, double h) {
  solveNetwork(bias);
  refreshCrosstalk();
  const std::size_t rows = array_->rows();
  const std::size_t cols = array_->cols();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = lineVoltages_[r] - lineVoltages_[rows + c];
      auto& device = array_->cell(r, c);
      device.advance(v, h);
      // Energy accounting from the device's final conduction operating
      // point of this substep (quasi-static within a substep).
      const double e = std::fabs(v * device.lastConduction().current) * h;
      totalEnergy_ += e;
      energyByCell_(r, c) += e;
    }
  }
  time_ += h;
}

void FastEngine::applyBias(const LineBias& bias, double duration) {
  if (bias.wordLine.size() != array_->rows() ||
      bias.bitLine.size() != array_->cols()) {
    throw std::invalid_argument("FastEngine: bias shape mismatch");
  }
  if (duration <= 0.0) return;
  // The crosstalk hub is refreshed once per substep, so a neighbour's input
  // temperature is stale within a substep. Keep the first substep near the
  // filament thermal time constant: the sources heat up during it, and from
  // the second substep on every cell sees the settled crosstalk level.
  const double tau = array_->config().cellParams.tauThermal;
  const std::size_t n = options_.substepsPerPulse;
  double first = std::min(2.0 * tau, duration / static_cast<double>(n));
  if (n == 1) first = duration;
  step(bias, first);
  const double remaining = duration - first;
  if (remaining <= 0.0) return;
  const std::size_t rest = n > 1 ? n - 1 : 1;
  const double h = remaining / static_cast<double>(rest);
  for (std::size_t s = 0; s < rest; ++s) step(bias, h);
}

void FastEngine::applyPulse(const LineBias& bias, double width, double gap) {
  applyBias(bias, width);
  if (options_.relaxBetweenPulses && gap > 0.0) {
    // Idle: all drivers at 0 V; devices cool toward ambient. A couple of
    // coarse steps suffice (the thermal relaxation is handled adaptively
    // inside each device).
    const LineBias idle = idleBias(array_->rows(), array_->cols());
    solveNetwork(idle);
    refreshCrosstalk();
    for (std::size_t r = 0; r < array_->rows(); ++r) {
      for (std::size_t c = 0; c < array_->cols(); ++c) {
        array_->cell(r, c).advance(0.0, gap);
      }
    }
    // Crosstalk inputs decay with the sources; clear for the next pulse.
    refreshCrosstalk();
    time_ += gap;
  } else {
    time_ += gap;
  }
}

PulseTrainResult FastEngine::applyPulseTrain(const LineBias& bias, double width,
                                             double gap, std::size_t count,
                                             const PulseCallback& callback) {
  PulseTrainResult result;
  const auto& params = array_->config().cellParams;
  const double window = params.nDiscMax - params.nDiscMin;
  const std::size_t cells = array_->cellCount();

  std::vector<double> before(cells), delta(cells);
  nh::util::Matrix energyBeforeByCell;
  std::size_t applied = 0;
  while (applied < count) {
    nh::util::checkCancellation("pulse train");
    // Snapshot, then one fully detailed pulse.
    for (std::size_t r = 0, k = 0; r < array_->rows(); ++r) {
      for (std::size_t c = 0; c < array_->cols(); ++c, ++k) {
        before[k] = array_->cell(r, c).nDisc();
      }
    }
    const double energyBefore = totalEnergy_;
    energyBeforeByCell = energyByCell_;
    applyPulse(bias, width, gap);
    const double energyPerPulse = totalEnergy_ - energyBefore;
    ++applied;
    ++result.pulsesSimulated;
    if (callback && callback(applied)) {
      result.stoppedEarly = true;
      break;
    }
    if (applied >= count) break;

    if (!options_.enableBatching) continue;

    // Batch: replay the per-cell delta while drift stays bounded.
    double maxDelta = 0.0;
    for (std::size_t r = 0, k = 0; r < array_->rows(); ++r) {
      for (std::size_t c = 0; c < array_->cols(); ++c, ++k) {
        delta[k] = array_->cell(r, c).nDisc() - before[k];
        maxDelta = std::max(maxDelta, std::fabs(delta[k]));
      }
    }
    std::size_t batch = options_.maxBatch;
    if (maxDelta > 0.0) {
      const double allowed = options_.batchDriftLimit * window / maxDelta;
      batch = static_cast<std::size_t>(std::min<double>(
          static_cast<double>(options_.maxBatch), std::max(0.0, allowed)));
    }
    batch = std::min(batch, count - applied);
    if (batch <= 1) continue;

    for (std::size_t r = 0, k = 0; r < array_->rows(); ++r) {
      for (std::size_t c = 0; c < array_->cols(); ++c, ++k) {
        auto& device = array_->cell(r, c);
        device.setNDisc(device.nDisc() + static_cast<double>(batch) * delta[k]);
      }
    }
    applied += batch;
    time_ += static_cast<double>(batch) * (width + gap);
    totalEnergy_ += static_cast<double>(batch) * energyPerPulse;
    for (std::size_t r = 0; r < array_->rows(); ++r) {
      for (std::size_t c = 0; c < array_->cols(); ++c) {
        energyByCell_(r, c) += static_cast<double>(batch) *
                               (energyByCell_(r, c) - energyBeforeByCell(r, c));
      }
    }
    if (callback && callback(applied)) {
      result.stoppedEarly = true;
      break;
    }
  }
  result.pulsesApplied = applied;
  return result;
}

}  // namespace nh::xbar
