#include "xbar/controller.hpp"

#include <stdexcept>

namespace nh::xbar {

MemoryController::MemoryController(FastEngine& engine, ControllerConfig config)
    : engine_(&engine), config_(config) {
  wordLineActivations_.assign(engine.array().rows(), 0);
  bitLineActivations_.assign(engine.array().cols(), 0);
}

std::size_t MemoryController::writeBit(std::size_t row, std::size_t col, bool value) {
  auto& array = engine_->array();
  auto& device = array.cell(row, col);
  const double amplitude = value ? config_.vSet : config_.vReset;
  const double width = value ? config_.setPulseWidth : config_.resetPulseWidth;
  const LineBias bias = selectBias(config_.scheme, array.rows(), array.cols(),
                                   row, col, amplitude);

  for (std::size_t attempt = 1; attempt <= config_.maxWriteAttempts; ++attempt) {
    engine_->applyPulse(bias, width, config_.interPulseGap);
    ++wordLineActivations_[row];
    ++bitLineActivations_[col];
    const double x = device.normalisedState();
    if (value ? (x >= config_.verifyLrsLevel) : (x <= config_.verifyHrsLevel)) {
      return attempt;
    }
  }
  throw std::runtime_error("MemoryController::writeBit: verify failed at (" +
                           std::to_string(row) + "," + std::to_string(col) + ")");
}

void MemoryController::writeImage(const std::vector<bool>& bits) {
  auto& array = engine_->array();
  if (bits.size() != array.cellCount()) {
    throw std::invalid_argument("writeImage: bit count mismatch");
  }
  // RESET pass first, then SET pass: avoids SET-disturbing freshly reset
  // neighbours with the long RESET tails.
  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      if (!bits[r * array.cols() + c] &&
          array.stateOf(r, c) != CellState::Hrs) {
        writeBit(r, c, false);
      }
    }
  }
  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      if (bits[r * array.cols() + c] && array.stateOf(r, c) != CellState::Lrs) {
        writeBit(r, c, true);
      }
    }
  }
}

ReadResult MemoryController::readBit(std::size_t row, std::size_t col) {
  auto& array = engine_->array();
  const LineBias bias =
      readBias(array.rows(), array.cols(), row, col, config_.vRead);
  engine_->applyBias(bias, config_.readPulseWidth);

  ReadResult result;
  const auto& device = array.cell(row, col);
  result.resistance = device.readResistance(config_.vRead);
  result.current = config_.vRead / result.resistance;
  result.state = result.resistance <= config_.readThresholdOhms ? CellState::Lrs
                                                                : CellState::Hrs;
  return result;
}

std::vector<bool> MemoryController::readImage() {
  auto& array = engine_->array();
  std::vector<bool> bits(array.cellCount());
  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      bits[r * array.cols() + c] = readBit(r, c).state == CellState::Lrs;
    }
  }
  return bits;
}

std::size_t MemoryController::hammer(std::size_t row, std::size_t col,
                                     std::size_t count, double width, double period,
                                     const FastEngine::PulseCallback& stopCondition) {
  auto& array = engine_->array();
  const LineBias bias = selectBias(config_.scheme, array.rows(), array.cols(),
                                   row, col, config_.vSet);
  const double gap = period > width ? period - width : width;  // default 50% duty
  const PulseTrainResult result =
      engine_->applyPulseTrain(bias, width, gap, count, stopCondition);
  wordLineActivations_[row] += result.pulsesApplied;
  bitLineActivations_[col] += result.pulsesApplied;
  return result.pulsesApplied;
}

void MemoryController::resetActivationCounters() {
  wordLineActivations_.assign(wordLineActivations_.size(), 0);
  bitLineActivations_.assign(bitLineActivations_.size(), 0);
}

}  // namespace nh::xbar
