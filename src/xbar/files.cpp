#include "xbar/files.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/stringutil.hpp"

namespace nh::xbar {

using nh::util::iequals;
using nh::util::parseDouble;
using nh::util::parseInt;
using nh::util::splitWhitespace;
using nh::util::trim;

namespace {

std::string readFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

[[noreturn]] void parseError(const char* what, std::size_t lineNo,
                             const std::string& line) {
  throw std::runtime_error(std::string(what) + " at line " +
                           std::to_string(lineNo) + ": '" + line + "'");
}

}  // namespace

std::vector<InitEntry> parseInit(const std::string& text) {
  std::vector<InitEntry> entries;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (trim(line).empty()) continue;
    const auto fields = splitWhitespace(line);
    if (fields.size() != 3) parseError("init: expected 'row col state'", lineNo, line);

    InitEntry e;
    const long long row = parseInt(fields[0], "init row");
    const long long col = parseInt(fields[1], "init col");
    if (row < 0 || col < 0) parseError("init: negative coordinate", lineNo, line);
    e.row = static_cast<std::size_t>(row);
    e.col = static_cast<std::size_t>(col);
    if (iequals(fields[2], "LRS")) {
      e.isLrs = true;
    } else if (iequals(fields[2], "HRS")) {
      e.isLrs = false;
    } else {
      e.nDisc = parseDouble(fields[2], "init nDisc");
      if (!(e.nDisc > 0.0)) parseError("init: nDisc must be > 0", lineNo, line);
      e.explicitConcentration = true;
    }
    entries.push_back(e);
  }
  return entries;
}

std::vector<InitEntry> loadInit(const std::filesystem::path& path) {
  return parseInit(readFile(path));
}

void applyInit(CrossbarArray& array, const std::vector<InitEntry>& entries) {
  for (const auto& e : entries) {
    if (e.row >= array.rows() || e.col >= array.cols()) {
      throw std::out_of_range("applyInit: cell (" + std::to_string(e.row) + "," +
                              std::to_string(e.col) + ") out of range");
    }
    auto& device = array.cell(e.row, e.col);
    if (e.explicitConcentration) {
      device.setNDisc(e.nDisc);
    } else if (e.isLrs) {
      device.setLrs();
    } else {
      device.setHrs();
    }
  }
}

std::string dumpInit(const CrossbarArray& array) {
  std::ostringstream os;
  os << "# row col state (nDisc in m^-3)\n";
  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      os << r << ' ' << c << ' ' << array.cell(r, c).nDisc() << '\n';
    }
  }
  return os.str();
}

std::vector<LineStimulus> parseStimuli(const std::string& text) {
  std::vector<LineStimulus> stimuli;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (trim(line).empty()) continue;
    const auto fields = splitWhitespace(line);
    if (fields.size() < 6 || fields.size() > 7) {
      parseError("stimuli: expected 'WL|BL idx amp lenNs duty count [delayNs]'",
                 lineNo, line);
    }

    LineStimulus s;
    if (iequals(fields[0], "WL")) {
      s.isWordLine = true;
    } else if (iequals(fields[0], "BL")) {
      s.isWordLine = false;
    } else {
      parseError("stimuli: line type must be WL or BL", lineNo, line);
    }
    const long long idx = parseInt(fields[1], "stimuli index");
    if (idx < 0) parseError("stimuli: negative index", lineNo, line);
    s.index = static_cast<std::size_t>(idx);

    const double amplitude = parseDouble(fields[2], "stimuli amplitude");
    const double lengthNs = parseDouble(fields[3], "stimuli length");
    const double duty = parseDouble(fields[4], "stimuli duty");
    const long long count = parseInt(fields[5], "stimuli count");
    const double delayNs = fields.size() == 7 ? parseDouble(fields[6], "delay") : 0.0;
    if (!(lengthNs > 0.0)) parseError("stimuli: length must be > 0", lineNo, line);
    if (!(duty > 0.0 && duty <= 1.0)) parseError("stimuli: duty in (0,1]", lineNo, line);
    if (count < -1) parseError("stimuli: count must be >= -1", lineNo, line);

    s.pulse.base = 0.0;
    s.pulse.amplitude = amplitude;
    s.pulse.width = lengthNs * 1e-9;
    s.pulse.period = duty < 1.0 ? s.pulse.width / duty : 0.0;
    s.pulse.count = count;
    s.pulse.delay = delayNs * 1e-9;
    s.pulse.rise = 0.5e-9;
    s.pulse.fall = 0.5e-9;
    if (s.pulse.period > 0.0 &&
        s.pulse.period < s.pulse.rise + s.pulse.width + s.pulse.fall) {
      // Keep the trapezoid consistent for very high duty cycles.
      s.pulse.period = s.pulse.rise + s.pulse.width + s.pulse.fall;
    }
    stimuli.push_back(s);
  }
  return stimuli;
}

std::vector<LineStimulus> loadStimuli(const std::filesystem::path& path) {
  return parseStimuli(readFile(path));
}

void validateStimuli(const CrossbarArray& array,
                     const std::vector<LineStimulus>& stimuli) {
  for (const auto& s : stimuli) {
    const std::size_t limit = s.isWordLine ? array.rows() : array.cols();
    if (s.index >= limit) {
      throw std::out_of_range("validateStimuli: line index " +
                              std::to_string(s.index) + " out of range");
    }
  }
}

}  // namespace nh::xbar
