#include "xbar/array.hpp"

#include <stdexcept>

#include "util/matrix.hpp"

namespace nh::xbar {

CrossbarArray::CrossbarArray(const ArrayConfig& config) : config_(config) {
  if (config.rows == 0 || config.cols == 0) {
    throw std::invalid_argument("CrossbarArray: empty array");
  }
  config_.cellParams.validate();
  cells_.reserve(config.rows * config.cols);
  for (std::size_t i = 0; i < config.rows * config.cols; ++i) {
    cells_.emplace_back(config_.cellParams, config_.ambientK);
  }
}

jart::JartDevice& CrossbarArray::cell(std::size_t row, std::size_t col) {
  if (row >= config_.rows || col >= config_.cols) {
    throw std::out_of_range("CrossbarArray::cell: coordinate out of range");
  }
  return cells_[row * config_.cols + col];
}

const jart::JartDevice& CrossbarArray::cell(std::size_t row, std::size_t col) const {
  if (row >= config_.rows || col >= config_.cols) {
    throw std::out_of_range("CrossbarArray::cell: coordinate out of range");
  }
  return cells_[row * config_.cols + col];
}

void CrossbarArray::fill(CellState state) {
  for (auto& device : cells_) {
    if (state == CellState::Lrs) {
      device.setLrs();
    } else {
      device.setHrs();
    }
  }
}

void CrossbarArray::setState(std::size_t row, std::size_t col, CellState state) {
  auto& device = cell(row, col);
  if (state == CellState::Lrs) {
    device.setLrs();
  } else {
    device.setHrs();
  }
}

void CrossbarArray::setAmbient(double ambientK) {
  config_.ambientK = ambientK;
  for (auto& device : cells_) device.setAmbient(ambientK);
}

void CrossbarArray::relaxAll() {
  for (auto& device : cells_) {
    device.setCrosstalk(0.0);
    device.relaxTemperature();
  }
}

CellState CrossbarArray::stateOf(std::size_t row, std::size_t col) const {
  return cell(row, col).normalisedState() >= 0.5 ? CellState::Lrs : CellState::Hrs;
}

nh::util::Matrix CrossbarArray::normalisedStates() const {
  nh::util::Matrix out(config_.rows, config_.cols, 0.0);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      out(r, c) = cell(r, c).normalisedState();
    }
  }
  return out;
}

nh::util::Matrix CrossbarArray::temperatures() const {
  nh::util::Matrix out(config_.rows, config_.cols, 0.0);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      out(r, c) = cell(r, c).temperature();
    }
  }
  return out;
}

nh::util::Matrix CrossbarArray::readResistances(double readVoltage) const {
  nh::util::Matrix out(config_.rows, config_.cols, 0.0);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      out(r, c) = cell(r, c).readResistance(readVoltage);
    }
  }
  return out;
}

}  // namespace nh::xbar
