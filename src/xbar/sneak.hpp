#pragma once
/// \file sneak.hpp
/// Sneak-path analysis of the passive crossbar. The paper's experiments
/// drive all unselected lines at V/2 "to minimize the sneak-path currents";
/// this module quantifies exactly that: the parasitic current through
/// unselected cells, the current a sense amplifier sees on the selected bit
/// line, and the resulting read margin -- as a function of biasing scheme,
/// array size and stored data pattern.

#include <cstddef>

#include "xbar/array.hpp"

namespace nh::xbar {

/// Read-path biasing of the unselected lines.
enum class ReadScheme {
  FloatingLines,  ///< Unselected lines left floating (cheapest, worst sneak).
  HalfBias,       ///< Unselected lines at vRead/2 (the paper's scheme).
};

/// One analysis outcome.
struct SneakAnalysis {
  double selectedCurrent = 0.0;   ///< Through the selected cell [A].
  double bitLineCurrent = 0.0;    ///< Into the selected bit-line driver [A]
                                  ///< (what the sense amplifier integrates).
  double sneakCurrent = 0.0;      ///< bitLineCurrent - selectedCurrent [A].
  double halfSelectPower = 0.0;   ///< Power burned in non-selected cells [W]
                                  ///< (the price of the V/2 scheme).
  /// Largest |voltage| across any non-selected cell [V]. This is what the
  /// V/2 scheme actually bounds: with floating lines the network divides
  /// the full drive voltage across sneak chains, disturb-stressing
  /// unselected cells; with V/2 the bound is vDrive/2 by construction.
  double maxUnselectedVoltage = 0.0;
};

/// Solve the resistive crossbar network for one read and decompose the
/// currents. The array's device states are used as stored data; the array
/// is not modified.
SneakAnalysis analyzeSneak(const CrossbarArray& array, std::size_t selRow,
                           std::size_t selCol, double vRead, ReadScheme scheme);

/// Worst-case read margin: the relative bit-line-current separation between
/// reading an LRS and an HRS selected cell when every other cell stores LRS
/// (maximum sneak). Margin = (I_lrs - I_hrs) / I_lrs; a sense amplifier
/// needs a healthy positive margin.
struct ReadMargin {
  double iSelectedLrs = 0.0;
  double iSelectedHrs = 0.0;
  double margin = 0.0;
};
ReadMargin worstCaseReadMargin(const ArrayConfig& config, double vRead,
                               ReadScheme scheme);

}  // namespace nh::xbar
