#pragma once
/// \file spicesim.hpp
/// Circuit-accurate crossbar engine: builds a full nh::spice netlist with a
/// distributed line model (per-segment word/bit line resistance, line
/// capacitance, driver impedance) and one behavioural memristor per cell,
/// then runs the transient analysis. This is the high-fidelity reference
/// path ("Cadence Virtuoso" role); the FastEngine is validated against it.

#include <memory>
#include <string>
#include <vector>

#include "spice/analysis.hpp"
#include "spice/elements.hpp"
#include "xbar/array.hpp"
#include "xbar/crosstalk.hpp"
#include "xbar/scheme.hpp"

namespace nh::xbar {

/// Options for the SPICE-level crossbar run.
struct SpiceEngineOptions {
  double dtMax = 2e-10;       ///< Transient step ceiling [s].
  double dtInitial = 1e-11;
  /// Record per-cell state/temperature traces (adds probes).
  bool traceCells = true;
  /// Newton controls forwarded to the transient analysis. The defaults keep
  /// the seed behaviour at seed sizes; large crossbar netlists cross
  /// NewtonOptions::sparseMinUnknowns and route through the sparse stack.
  nh::spice::NewtonOptions newton;
};

/// Per-line pulse programming: the stimuli for one transient run.
struct LineStimulus {
  bool isWordLine = true;
  std::size_t index = 0;
  nh::spice::PulseSpec pulse;  ///< base level = the resting bias of the line.
};

/// Circuit-accurate engine bound to an array. The netlist references the
/// array's JartDevice states directly, so fast and SPICE engines can be run
/// interleaved on the same array.
class SpiceCrossbar {
 public:
  SpiceCrossbar(CrossbarArray& array, AlphaTable table,
                SpiceEngineOptions options = {});

  /// Program the line drivers: every line gets a constant bias except those
  /// listed in \p stimuli, which get pulse waveforms. \p resting applies to
  /// un-stimulated lines (e.g. V/2 on all, pulses on the selected pair).
  void programDrivers(const LineBias& resting,
                      const std::vector<LineStimulus>& stimuli);

  /// Convenience: program a hammer operation on cell (row, col) under the
  /// V/2 scheme -- selected word line pulses base->V, selected bit line held
  /// at 0, every other line at V/2 (the paper's attack stimulus).
  void programHammer(std::size_t row, std::size_t col, double vSet, double width,
                     double period, long long count);

  /// Run a transient for \p tStop seconds. Device states in the bound array
  /// advance; the crosstalk hub is refreshed after every accepted step.
  nh::spice::TransientResult run(double tStop);

  /// Accumulated simulated time over all run() calls [s].
  double time() const { return time_; }

  nh::spice::Circuit& circuit() { return circuit_; }
  /// Node names of the array-side line nodes (diagnostics).
  std::string wordLineNode(std::size_t row, std::size_t segment) const;
  std::string bitLineNode(std::size_t col, std::size_t segment) const;

 private:
  void buildNetlist();
  void refreshCrosstalk();

  CrossbarArray* array_;
  CrosstalkHub hub_;
  SpiceEngineOptions options_;
  nh::spice::Circuit circuit_;
  /// Driver sources, word lines then bit lines.
  std::vector<nh::spice::VoltageSource*> drivers_;
  /// Memristor elements, row-major.
  std::vector<nh::spice::Memristor*> memristors_;
  double time_ = 0.0;
};

}  // namespace nh::xbar
