#include "xbar/vmm.hpp"

#include <cmath>
#include <stdexcept>

namespace nh::xbar {

nh::util::Vector vmmCurrents(const CrossbarArray& array,
                             const nh::util::Vector& inputs,
                             const VmmOptions& options) {
  if (inputs.size() != array.rows()) {
    throw std::invalid_argument("vmmCurrents: input size mismatch");
  }
  for (const double v : inputs) {
    if (std::fabs(v) > options.vMax + 1e-12) {
      throw std::invalid_argument("vmmCurrents: input exceeds vMax");
    }
  }
  nh::util::Vector currents(array.cols(), 0.0);
  for (std::size_t r = 0; r < array.rows(); ++r) {
    if (inputs[r] == 0.0) continue;
    for (std::size_t c = 0; c < array.cols(); ++c) {
      currents[c] += array.cell(r, c).current(inputs[r]);
    }
  }
  return currents;
}

nh::util::Matrix conductanceMatrix(const CrossbarArray& array, double probeVoltage) {
  if (probeVoltage == 0.0) {
    throw std::invalid_argument("conductanceMatrix: probeVoltage must be non-zero");
  }
  nh::util::Matrix g(array.rows(), array.cols(), 0.0);
  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      g(r, c) = array.cell(r, c).current(probeVoltage) / probeVoltage;
    }
  }
  return g;
}

}  // namespace nh::xbar
