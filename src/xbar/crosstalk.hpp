#pragma once
/// \file crosstalk.hpp
/// The crosstalk hub (paper Sec. IV-B): computes the additional temperature
/// of every cell from the filament temperatures of all other cells,
///   T_in,i = sum_j alpha_ij * dT_j   (Eq. 5, applied to excess temperature)
/// using the alpha values extracted from the crossbar FEM simulation
/// (Sec. IV-A). Alphas are stored as a translation-invariant table over the
/// relative offset (dRow, dCol) around a hammered cell, which is exactly
/// what the centre-cell extraction of Fig. 2a provides.

#include <cstddef>
#include <vector>

#include "fem/alpha.hpp"
#include "util/matrix.hpp"

namespace nh::xbar {

/// Translation-invariant thermal-coupling coefficients alpha(dRow, dCol).
class AlphaTable {
 public:
  AlphaTable() = default;

  /// Build from a FEM extraction around cell (selectedRow, selectedCol):
  /// the table offset (dr, dc) takes the value alpha(selected+dr,
  /// selected+dc). Also captures the extracted R_th.
  static AlphaTable fromExtraction(const fem::AlphaResult& extraction);

  /// Closed-form fallback calibrated against the FEM extraction (see
  /// DESIGN.md): nearest same-line coupling decays exponentially with the
  /// electrode spacing, off-line (diagonal) coupling is weaker, and the
  /// coupling decays with Chebyshev distance. Useful for tests and for
  /// sweeps where re-running the FEM would dominate runtime.
  static AlphaTable analytic(double spacingMeters);

  /// alpha for relative offset; 0 at (0,0) and outside the table.
  double at(long long dRow, long long dCol) const;
  /// Largest tabulated |offset| in each direction.
  long long radius() const { return radius_; }
  /// R_th of the hammered cell [K/W]; 0 when unknown (analytic table keeps
  /// the compact-model default).
  double rTh() const { return rTh_; }
  void setRTh(double rth) { rTh_ = rth; }
  /// Sum of all coefficients (stability requires < 1).
  double totalCoupling() const;

  /// Directly set a coefficient (tests, ablations).
  void set(long long dRow, long long dCol, double value);
  /// Zero out all couplings beyond Chebyshev distance \p maxDistance
  /// (truncation-radius ablation).
  void truncate(long long maxDistance);

 private:
  explicit AlphaTable(long long radius);
  std::size_t index(long long dRow, long long dCol) const;
  long long radius_ = 0;
  std::vector<double> table_;  ///< (2r+1)^2 entries, row-major.
  double rTh_ = 0.0;
};

/// The hub itself: Eq. 5 over a rows x cols array.
class CrosstalkHub {
 public:
  CrosstalkHub(std::size_t rows, std::size_t cols, AlphaTable table);

  const AlphaTable& table() const { return table_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Eq. 5: per-cell additional temperature from the per-cell *self*-heating
  /// excess temperatures \p excess (both rows x cols). Superposition of the
  /// single-source FEM solutions the alphas were extracted from; see the
  /// implementation note on why total-temperature feedback would be wrong.
  nh::util::Matrix inputTemperatures(const nh::util::Matrix& excess) const;

  /// Steady-state total excess temperature per cell for a static per-cell
  /// power map: excess_i = rth*P_i + sum_j alpha_ij * rth*P_j.
  nh::util::Matrix solveCoupledExcess(const nh::util::Matrix& cellPower,
                                      double rth) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  AlphaTable table_;
};

}  // namespace nh::xbar
